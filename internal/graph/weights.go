package graph

import "ncc/internal/hashing"

// Weighted pairs a graph with integral edge weights in {1, ..., W}, the MST
// input of Section 3.
type Weighted struct {
	*Graph
	w    map[uint64]int64
	maxW int64
}

// NewWeighted wraps g with unit weights.
func NewWeighted(g *Graph) *Weighted {
	return &Weighted{Graph: g, w: make(map[uint64]int64), maxW: 1}
}

// RandomWeights assigns independent uniform weights in {1, ..., maxW} to
// every edge of g.
func RandomWeights(g *Graph, maxW int64, seed int64) *Weighted {
	r := rng(seed)
	wg := &Weighted{Graph: g, w: make(map[uint64]int64, g.M()), maxW: maxW}
	g.Edges(func(u, v int) {
		wg.w[hashing.PackUndirected(u, v)] = 1 + r.Int64N(maxW)
	})
	return wg
}

// SetWeight sets the weight of edge {u, v}, which must exist.
func (wg *Weighted) SetWeight(u, v int, w int64) {
	if !wg.HasEdge(u, v) {
		panic("graph: SetWeight on a non-edge")
	}
	if w < 1 {
		panic("graph: weights must be positive")
	}
	wg.w[hashing.PackUndirected(u, v)] = w
	if w > wg.maxW {
		wg.maxW = w
	}
}

// Weight returns the weight of edge {u, v} (1 if never set).
func (wg *Weighted) Weight(u, v int) int64 {
	if w, ok := wg.w[hashing.PackUndirected(u, v)]; ok {
		return w
	}
	return 1
}

// MaxWeight returns the largest weight W.
func (wg *Weighted) MaxWeight() int64 { return wg.maxW }

// TotalWeight sums all edge weights.
func (wg *Weighted) TotalWeight() int64 {
	var t int64
	wg.Edges(func(u, v int) { t += wg.Weight(u, v) })
	return t
}
