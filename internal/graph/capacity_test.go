package graph

import (
	"strings"
	"testing"

	"ncc/internal/param"
)

func TestCapacityRegistryHasCorePolicies(t *testing.T) {
	for _, name := range []string{"uniform", "degree", "file", "explicit"} {
		if _, ok := GetCapacityPolicy(name); !ok {
			t.Errorf("policy %q not registered", name)
		}
	}
	names := CapacityPolicyNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

func TestUniformPolicyIsNil(t *testing.T) {
	g := Star(16)
	caps, err := BuildCapacities(CapacitySpec{Policy: "uniform"}, g, 32)
	if err != nil || caps != nil {
		t.Fatalf("caps=%v err=%v, want nil, nil", caps, err)
	}
}

func TestDegreePolicyScalesAndFloors(t *testing.T) {
	g := Star(64) // center degree 63, leaves degree 1, avg just under 2
	base := 48
	caps, err := BuildCapacities(CapacitySpec{Policy: "degree"}, g, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(caps) != 64 {
		t.Fatalf("len = %d", len(caps))
	}
	if caps[0] <= base {
		t.Errorf("center cap %d should exceed base %d", caps[0], base)
	}
	// Leaf share = round(base * 1 / avgdeg) = round(48/1.969) = 24.
	for u := 1; u < 64; u++ {
		if caps[u] != 24 {
			t.Errorf("leaf %d cap = %d, want 24", u, caps[u])
		}
	}
	// A min above the proportional share lifts the leaves to it.
	caps, err = BuildCapacities(CapacitySpec{Policy: "degree", Params: param.Values{"min": 30}}, g, base)
	if err != nil {
		t.Fatal(err)
	}
	if caps[1] != 30 {
		t.Errorf("leaf cap with min=30 = %d", caps[1])
	}
}

func TestFilePolicyNeedsWeights(t *testing.T) {
	g := Cycle(8)
	if _, err := BuildCapacities(CapacitySpec{Policy: "file"}, g, 24); err == nil {
		t.Fatal("unweighted graph accepted")
	}
	w := make([]uint32, 8)
	for i := range w {
		w[i] = uint32(1 + i)
	}
	if err := g.SetCapacityWeights(w); err != nil {
		t.Fatal(err)
	}
	caps, err := BuildCapacities(CapacitySpec{Policy: "file"}, g, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(caps) != 8 || caps[7] <= caps[0] {
		t.Fatalf("caps = %v, want increasing with weight", caps)
	}
}

func TestExplicitPolicy(t *testing.T) {
	g := Path(4)
	caps, err := BuildCapacities(CapacitySpec{Policy: "explicit", Values: []float64{5, 6, 7, 8}}, g, 10)
	if err != nil {
		t.Fatal(err)
	}
	if caps[0] != 5 || caps[3] != 8 {
		t.Fatalf("caps = %v", caps)
	}
	for _, bad := range [][]float64{
		{5, 6, 7},          // wrong length
		{5, 6, 7, 0},       // below 1
		{5, 6, 7, 8.5},     // non-integral
		nil,                // missing entirely
		{5, 6, 7, 8, 9, 1}, // too long
	} {
		if _, err := BuildCapacities(CapacitySpec{Policy: "explicit", Values: bad}, g, 10); err == nil {
			t.Errorf("values %v accepted", bad)
		}
	}
}

func TestValidateCapacitySpec(t *testing.T) {
	cases := []struct {
		spec CapacitySpec
		n    int
		want string // "" = valid
	}{
		{CapacitySpec{Policy: "uniform"}, 0, ""},
		{CapacitySpec{Policy: "degree", Params: param.Values{"min": 4}}, 0, ""},
		{CapacitySpec{Policy: "nope"}, 0, "unknown"},
		{CapacitySpec{Policy: "degree", Params: param.Values{"zap": 1}}, 0, "unknown params"},
		{CapacitySpec{Policy: "uniform", Values: []float64{1}}, 0, "no explicit values"},
		{CapacitySpec{Policy: "explicit"}, 0, "requires"},
		{CapacitySpec{Policy: "explicit", Values: []float64{3, 3}}, 3, "entries"},
		{CapacitySpec{Policy: "explicit", Values: []float64{3, 0.5}}, 2, "integer"},
		{CapacitySpec{Policy: "explicit", Values: []float64{3, 3}}, 2, ""},
	}
	for _, c := range cases {
		err := ValidateCapacitySpec(c.spec, c.n)
		if c.want == "" {
			if err != nil {
				t.Errorf("%+v: unexpected error %v", c.spec, err)
			}
		} else if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%+v: err = %v, want substring %q", c.spec, err, c.want)
		}
	}
}
