package graph

import (
	"strings"
	"testing"

	"ncc/internal/param"
)

func TestBuildEveryFamilyWithDefaults(t *testing.T) {
	for _, f := range Families() {
		if f.FromFile {
			continue // needs a stored graph, not defaults; covered in graphio tests
		}
		t.Run(f.Name, func(t *testing.T) {
			g, err := Build(Spec{Family: f.Name, Seed: 1})
			if err != nil {
				t.Fatalf("defaults rejected: %v", err)
			}
			if g.N() < 1 {
				t.Errorf("built graph has %d nodes", g.N())
			}
		})
	}
}

func TestBuildMatchesDirectGenerators(t *testing.T) {
	cases := []struct {
		spec Spec
		want *Graph
	}{
		{Spec{Family: "gnm", Params: param.Values{"n": 32, "m": 64}, Seed: 5}, GNM(32, 64, 5)},
		{Spec{Family: "gnm", Params: param.Values{"n": 32}, Seed: 5}, GNM(32, 96, 5)}, // m=0 -> 3n
		{Spec{Family: "kforest", Params: param.Values{"n": 20, "k": 3}, Seed: 7}, KForest(20, 3, 7)},
		{Spec{Family: "grid", Params: param.Values{"rows": 3, "cols": 4}}, Grid(3, 4)},
		{Spec{Family: "hypercube", Params: param.Values{"k": 4}}, Hypercube(4)},
		{Spec{Family: "pa", Params: param.Values{"n": 30, "k": 2}, Seed: 9}, PreferentialAttachment(30, 2, 9)},
	}
	for _, c := range cases {
		g, err := Build(c.spec)
		if err != nil {
			t.Fatalf("%v: %v", c.spec, err)
		}
		if g.N() != c.want.N() || g.M() != c.want.M() {
			t.Errorf("%v: got n=%d m=%d, want n=%d m=%d", c.spec, g.N(), g.M(), c.want.N(), c.want.M())
		}
		for u := 0; u < g.N(); u++ {
			for _, v := range c.want.Neighbors(u) {
				if !g.HasEdge(u, int(v)) {
					t.Fatalf("%v: edge (%d,%d) missing from registry-built graph", c.spec, u, v)
				}
			}
		}
	}
}

func TestBuildRejectsUnknownFamily(t *testing.T) {
	_, err := Build(Spec{Family: "nope"})
	if err == nil || !strings.Contains(err.Error(), `unknown graph family "nope"`) {
		t.Errorf("err = %v", err)
	}
}

func TestBuildRejectsUnknownParam(t *testing.T) {
	_, err := Build(Spec{Family: "grid", Params: param.Values{"n": 64}})
	if err == nil || !strings.Contains(err.Error(), "unknown params n") {
		t.Errorf("err = %v", err)
	}
}

func TestBuildRejectsBadSizes(t *testing.T) {
	for _, s := range []Spec{
		{Family: "gnm", Params: param.Values{"n": 0}},
		{Family: "grid", Params: param.Values{"rows": 0}},
		{Family: "gnp", Params: param.Values{"p": 1.5}},
		{Family: "hypercube", Params: param.Values{"k": -1}},
	} {
		if _, err := Build(s); err == nil {
			t.Errorf("%v: accepted invalid parameters", s)
		}
	}
}

func TestSpecString(t *testing.T) {
	s := Spec{Family: "gnm", Params: param.Values{"n": 32, "m": 64}}
	if got := s.String(); got != "gnm{m=64 n=32}" {
		t.Errorf("String = %q", got)
	}
}
