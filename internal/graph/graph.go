// Package graph provides the input-graph substrate for the Node-Capacitated
// Clique algorithms: an adjacency representation matching the model's
// assumption (each node knows exactly its neighbor ids), generators for the
// graph families the paper's bounds speak about (bounded-arboricity families,
// planar-like grids, trees, stars, random graphs), edge weights for MST, and
// structural properties (components, diameter, degeneracy as an arboricity
// proxy).
package graph

import (
	"fmt"
	"io"
	"sort"
)

// Graph is a simple undirected graph on nodes 0..N-1 with sorted adjacency
// lists and no self-loops or parallel edges.
type Graph struct {
	n   int
	adj [][]int32
	m   int
}

// Builder accumulates edges for a Graph.
type Builder struct {
	n     int
	edges map[[2]int32]struct{}
}

// NewBuilder creates a builder for a graph on n nodes.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: n, edges: make(map[[2]int32]struct{})}
}

// AddEdge inserts the undirected edge {u, v}; self-loops and duplicates are
// ignored. Out-of-range endpoints panic.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	b.edges[[2]int32{int32(u), int32(v)}] = struct{}{}
}

// HasEdge reports whether {u, v} was added.
func (b *Builder) HasEdge(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	_, ok := b.edges[[2]int32{int32(u), int32(v)}]
	return ok
}

// NumEdges returns the number of distinct edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build finalizes the graph.
func (b *Builder) Build() *Graph {
	g := &Graph{n: b.n, adj: make([][]int32, b.n), m: len(b.edges)}
	for e := range b.edges {
		g.adj[e[0]] = append(g.adj[e[0]], e[1])
		g.adj[e[1]] = append(g.adj[e[1]], e[0])
	}
	for u := range g.adj {
		sort.Slice(g.adj[u], func(i, j int) bool { return g.adj[u][i] < g.adj[u][j] })
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Neighbors returns u's sorted neighbor list. The slice must not be modified.
func (g *Graph) Neighbors(u int) []int32 { return g.adj[u] }

// Degree returns the degree of u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// HasEdge reports whether {u, v} is an edge, in O(log deg).
func (g *Graph) HasEdge(u, v int) bool {
	a := g.adj[u]
	i := sort.Search(len(a), func(i int) bool { return a[i] >= int32(v) })
	return i < len(a) && a[i] == int32(v)
}

// MaxDegree returns the maximum degree.
func (g *Graph) MaxDegree() int {
	d := 0
	for u := 0; u < g.n; u++ {
		if len(g.adj[u]) > d {
			d = len(g.adj[u])
		}
	}
	return d
}

// AvgDegree returns the average degree 2m/n.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(g.n)
}

// Edges calls fn once per undirected edge with u < v.
func (g *Graph) Edges(fn func(u, v int)) {
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if int32(u) < v {
				fn(u, int(v))
			}
		}
	}
}

func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d m=%d)", g.n, g.m)
}

// WriteDOT renders the graph in Graphviz DOT format, optionally labeling
// nodes (nil labels for plain ids) — handy for inspecting small experiment
// inputs and outputs.
func (g *Graph) WriteDOT(w io.Writer, name string, label func(u int) string) error {
	if _, err := fmt.Fprintf(w, "graph %q {\n", name); err != nil {
		return err
	}
	for u := 0; u < g.n; u++ {
		if label != nil {
			if _, err := fmt.Fprintf(w, "  %d [label=%q];\n", u, label(u)); err != nil {
				return err
			}
		}
	}
	var outerErr error
	g.Edges(func(u, v int) {
		if outerErr == nil {
			_, outerErr = fmt.Fprintf(w, "  %d -- %d;\n", u, v)
		}
	})
	if outerErr != nil {
		return outerErr
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
