// Package graph provides the input-graph substrate for the Node-Capacitated
// Clique algorithms: an adjacency representation matching the model's
// assumption (each node knows exactly its neighbor ids), generators for the
// graph families the paper's bounds speak about (bounded-arboricity families,
// planar-like grids, trees, stars, random graphs), edge weights for MST, and
// structural properties (components, diameter, degeneracy as an arboricity
// proxy).
package graph

import (
	"fmt"
	"io"
	"math"
	"slices"
	"sort"
)

// Graph is a simple undirected graph on nodes 0..N-1 with sorted adjacency
// lists and no self-loops or parallel edges.
type Graph struct {
	n   int
	adj [][]int32
	m   int

	// capw optionally carries per-node capacity weights (relative bandwidth
	// shares, e.g. from an ingested .nccg file); nil for unweighted graphs.
	capw []uint32
}

// Builder accumulates edges for a Graph. Edges are buffered as packed
// (min, max) pairs and sorted+deduplicated once at Build: large generated
// graphs pay one flat slice and a sort instead of per-edge map overhead.
type Builder struct {
	n     int
	edges []uint64 // u<<32 | v with u < v; duplicates resolved at Build
}

// NewBuilder creates a builder for a graph on n nodes.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	if n > math.MaxInt32 {
		panic("graph: node count exceeds int32 id space")
	}
	return &Builder{n: n}
}

// AddEdge inserts the undirected edge {u, v}; self-loops and duplicates are
// ignored. Out-of-range endpoints panic.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, uint64(u)<<32|uint64(v))
}

// Build finalizes the graph: the buffered edges are sorted, deduplicated, and
// laid out as one contiguous CSR backing array with per-node slice views.
// Sorted packed edges fill every adjacency list in ascending order in a
// single pass — a node's smaller neighbors arrive while iterating edges whose
// first endpoint precedes it, its larger ones from its own run of the sort.
func (b *Builder) Build() *Graph {
	slices.Sort(b.edges)
	b.edges = slices.Compact(b.edges)
	m := len(b.edges)
	deg := make([]int32, b.n)
	for _, e := range b.edges {
		deg[e>>32]++
		deg[uint32(e)]++
	}
	backing := make([]int32, 0, 2*m)
	adj := make([][]int32, b.n)
	off := 0
	for u := range adj {
		adj[u] = backing[off : off : off+int(deg[u])]
		off += int(deg[u])
	}
	for _, e := range b.edges {
		u, v := int32(e>>32), int32(uint32(e))
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	return &Graph{n: b.n, adj: adj, m: m}
}

// FromAdj wraps pre-built adjacency lists as a Graph without copying; m is the
// undirected edge count. Every adj[u] must be strictly ascending, in range,
// self-loop-free, and symmetric — intended for loaders (internal/graphio)
// that construct CSR adjacency directly and validate it themselves.
func FromAdj(adj [][]int32, m int) *Graph {
	return &Graph{n: len(adj), adj: adj, m: m}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Neighbors returns u's sorted neighbor list. The slice must not be modified.
func (g *Graph) Neighbors(u int) []int32 { return g.adj[u] }

// Degree returns the degree of u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// HasEdge reports whether {u, v} is an edge, in O(log deg).
func (g *Graph) HasEdge(u, v int) bool {
	a := g.adj[u]
	i := sort.Search(len(a), func(i int) bool { return a[i] >= int32(v) })
	return i < len(a) && a[i] == int32(v)
}

// MaxDegree returns the maximum degree.
func (g *Graph) MaxDegree() int {
	d := 0
	for u := 0; u < g.n; u++ {
		if len(g.adj[u]) > d {
			d = len(g.adj[u])
		}
	}
	return d
}

// AvgDegree returns the average degree 2m/n.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(g.n)
}

// Edges calls fn once per undirected edge with u < v.
func (g *Graph) Edges(fn func(u, v int)) {
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if int32(u) < v {
				fn(u, int(v))
			}
		}
	}
}

// SetCapacityWeights attaches per-node capacity weights: relative bandwidth
// shares (not absolute message counts) that the "file" capacity policy scales
// against the model's base capacity. Pass nil to clear. Loaders call this
// once at build time; a Graph is otherwise immutable and safely shared.
func (g *Graph) SetCapacityWeights(w []uint32) error {
	if w == nil {
		g.capw = nil
		return nil
	}
	if len(w) != g.n {
		return fmt.Errorf("graph: %d capacity weights for %d nodes", len(w), g.n)
	}
	for u, v := range w {
		if v == 0 {
			return fmt.Errorf("graph: capacity weight of node %d is zero, need >= 1", u)
		}
	}
	g.capw = w
	return nil
}

// CapacityWeights returns the per-node capacity weights, or nil if the graph
// carries none. The slice must not be modified.
func (g *Graph) CapacityWeights() []uint32 { return g.capw }

func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d m=%d)", g.n, g.m)
}

// WriteDOT renders the graph in Graphviz DOT format, optionally labeling
// nodes (nil labels for plain ids) — handy for inspecting small experiment
// inputs and outputs.
func (g *Graph) WriteDOT(w io.Writer, name string, label func(u int) string) error {
	if _, err := fmt.Fprintf(w, "graph %q {\n", name); err != nil {
		return err
	}
	for u := 0; u < g.n; u++ {
		if label != nil {
			if _, err := fmt.Fprintf(w, "  %d [label=%q];\n", u, label(u)); err != nil {
				return err
			}
		}
	}
	var outerErr error
	g.Edges(func(u, v int) {
		if outerErr == nil {
			_, outerErr = fmt.Fprintf(w, "  %d -- %d;\n", u, v)
		}
	})
	if outerErr != nil {
		return outerErr
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
