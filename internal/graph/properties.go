package graph

// Components returns the component id of every node (ids are dense from 0)
// and the number of components.
func Components(g *Graph) ([]int, int) {
	comp := make([]int, g.N())
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	var stack []int
	for s := 0; s < g.N(); s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = next
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range g.Neighbors(u) {
				if comp[v] == -1 {
					comp[v] = next
					stack = append(stack, int(v))
				}
			}
		}
		next++
	}
	return comp, next
}

// BFSDistances returns the unweighted distances from src (-1 when
// unreachable) and the BFS parent of every reached node (-1 for src and
// unreachable nodes). Parents break ties toward the smallest id, matching the
// paper's BFS-tree definition in Section 5.1.
func BFSDistances(g *Graph, src int) (dist, parent []int) {
	dist = make([]int, g.N())
	parent = make([]int, g.N())
	for i := range dist {
		dist[i] = -1
		parent[i] = -1
	}
	dist[src] = 0
	frontier := []int{src}
	for len(frontier) > 0 {
		var next []int
		for _, u := range frontier {
			for _, v32 := range g.Neighbors(u) {
				v := int(v32)
				if dist[v] == -1 {
					dist[v] = dist[u] + 1
					parent[v] = u
					next = append(next, v)
				} else if dist[v] == dist[u]+1 && u < parent[v] {
					parent[v] = u
				}
			}
		}
		frontier = next
	}
	return dist, parent
}

// Diameter returns the exact diameter of the (assumed connected) graph via
// n BFS traversals; -1 if disconnected. Intended for the modest sizes used in
// experiments.
func Diameter(g *Graph) int {
	d := 0
	for s := 0; s < g.N(); s++ {
		dist, _ := BFSDistances(g, s)
		for _, x := range dist {
			if x == -1 {
				return -1
			}
			if x > d {
				d = x
			}
		}
	}
	return d
}

// Eccentricity returns max distance from src, ignoring unreachable nodes.
func Eccentricity(g *Graph, src int) int {
	dist, _ := BFSDistances(g, src)
	e := 0
	for _, x := range dist {
		if x > e {
			e = x
		}
	}
	return e
}

// Degeneracy returns the graph's degeneracy and a degeneracy elimination
// ordering (repeatedly remove a minimum-degree node). The degeneracy d
// brackets the arboricity a: a <= d <= 2a-1, so it is the standard
// executable proxy for the paper's arboricity parameter.
func Degeneracy(g *Graph) (int, []int) {
	n := g.N()
	deg := make([]int, n)
	removed := make([]bool, n)
	maxDeg := 0
	for u := 0; u < n; u++ {
		deg[u] = g.Degree(u)
		if deg[u] > maxDeg {
			maxDeg = deg[u]
		}
	}
	// Bucket queue over degrees.
	buckets := make([][]int, maxDeg+1)
	for u := 0; u < n; u++ {
		buckets[deg[u]] = append(buckets[deg[u]], u)
	}
	order := make([]int, 0, n)
	degeneracy := 0
	cur := 0
	for len(order) < n {
		if cur > 0 && len(buckets[cur-1]) > 0 {
			cur-- // a neighbor removal may have exposed a smaller bucket
		}
		for cur <= maxDeg && len(buckets[cur]) == 0 {
			cur++
		}
		b := buckets[cur]
		u := b[len(b)-1]
		buckets[cur] = b[:len(b)-1]
		if removed[u] || deg[u] != cur {
			continue // stale bucket entry
		}
		removed[u] = true
		order = append(order, u)
		if cur > degeneracy {
			degeneracy = cur
		}
		for _, v32 := range g.Neighbors(u) {
			v := int(v32)
			if !removed[v] {
				deg[v]--
				buckets[deg[v]] = append(buckets[deg[v]], v)
			}
		}
	}
	return degeneracy, order
}

// ArticulationPoints returns the cut vertices of the graph — the nodes whose
// removal increases the number of connected components — in ascending id
// order. Iterative Tarjan lowpoint computation, one DFS per component; used by
// the adversarial fault model to pick structurally critical victims.
func ArticulationPoints(g *Graph) []int {
	n := g.N()
	disc := make([]int, n) // 1-based discovery time; 0 = unvisited
	low := make([]int, n)
	parent := make([]int, n)
	isCut := make([]bool, n)
	// frame.next indexes into g.Neighbors(frame.u), resumed across pushes.
	type frame struct{ u, next int }
	var stack []frame
	time := 0
	for s := 0; s < n; s++ {
		if disc[s] != 0 {
			continue
		}
		rootChildren := 0
		time++
		disc[s], low[s], parent[s] = time, time, -1
		stack = append(stack[:0], frame{u: s})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			nbrs := g.Neighbors(f.u)
			if f.next < len(nbrs) {
				v := int(nbrs[f.next])
				f.next++
				if disc[v] == 0 {
					time++
					disc[v], low[v], parent[v] = time, time, f.u
					if f.u == s {
						rootChildren++
					}
					stack = append(stack, frame{u: v})
				} else if v != parent[f.u] {
					low[f.u] = min(low[f.u], disc[v])
				}
				continue
			}
			stack = stack[:len(stack)-1]
			if p := parent[f.u]; p != -1 {
				low[p] = min(low[p], low[f.u])
				if p != s && low[f.u] >= disc[p] {
					isCut[p] = true
				}
			}
		}
		isCut[s] = rootChildren > 1
	}
	var cuts []int
	for u := 0; u < n; u++ {
		if isCut[u] {
			cuts = append(cuts, u)
		}
	}
	return cuts
}

// ArboricityLowerBound returns the Nash-Williams bound m/(n-1) rounded up,
// using the whole graph as the witness subgraph (Section 2.1).
func ArboricityLowerBound(g *Graph) int {
	if g.N() < 2 {
		return 0
	}
	return (g.M() + g.N() - 2) / (g.N() - 1)
}
