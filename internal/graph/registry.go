package graph

import (
	"fmt"
	"sort"
	"strings"

	"ncc/internal/param"
)

// Family is a registered graph generator: a named family with declared,
// defaultable parameters. Families self-register at init time; the CLIs,
// the scenario runner and the benchmarks resolve generators exclusively
// through this registry, so adding a family here makes it available
// everywhere at once.
type Family struct {
	Name string
	Desc string
	// Params declares the accepted parameters; Build receives a bag that has
	// been validated and defaulted against them.
	Params []param.Def
	// Seeded marks families whose output depends on Spec.Seed.
	Seeded bool
	// FromFile marks families that load a stored graph named by Spec.File
	// instead of generating one; Build is bypassed in favor of the installed
	// file resolver.
	FromFile bool
	Build    func(v param.Values, seed int64) (*Graph, error)
}

// Spec selects a family plus concrete parameter values — the serializable
// "which graph" half of a scenario. For FromFile families, File names the
// stored graph (the content hash of its .nccg file).
type Spec struct {
	Family string       `json:"family"`
	Params param.Values `json:"params,omitempty"`
	Seed   int64        `json:"seed,omitempty"`
	File   string       `json:"file,omitempty"`
}

func (s Spec) String() string {
	parts := make([]string, 0, len(s.Params))
	for name := range s.Params {
		parts = append(parts, name)
	}
	sort.Strings(parts)
	for i, name := range parts {
		parts[i] = fmt.Sprintf("%s=%g", name, s.Params[name])
	}
	if s.File != "" {
		ref := s.File
		if len(ref) > 12 {
			ref = ref[:12]
		}
		parts = append(parts, "file="+ref)
	}
	return fmt.Sprintf("%s{%s}", s.Family, strings.Join(parts, " "))
}

// fileResolver loads a stored graph by reference (a content hash). The graph
// package cannot depend on internal/graphio — graphio already imports graph —
// so graphio installs the real loader at init time via SetFileResolver;
// importing it (the scenario package does) is what links the two.
var fileResolver = func(ref string) (*Graph, error) {
	return nil, fmt.Errorf("no graph file resolver installed (import ncc/internal/graphio)")
}

// SetFileResolver installs the loader backing the "file" family.
func SetFileResolver(fn func(ref string) (*Graph, error)) {
	if fn == nil {
		panic("graph: nil file resolver")
	}
	fileResolver = fn
}

var families = map[string]Family{}

// RegisterFamily adds a family to the registry; duplicate or anonymous
// registrations are programming errors.
func RegisterFamily(f Family) {
	if f.Name == "" || f.Build == nil {
		panic("graph: RegisterFamily needs a name and a build function")
	}
	if _, dup := families[f.Name]; dup {
		panic(fmt.Sprintf("graph: family %q registered twice", f.Name))
	}
	families[f.Name] = f
}

// GetFamily looks up a registered family.
func GetFamily(name string) (Family, bool) {
	f, ok := families[name]
	return f, ok
}

// FamilyNames lists registered families in sorted order.
func FamilyNames() []string {
	out := make([]string, 0, len(families))
	for n := range families {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Families returns every registered family, ordered by name.
func Families() []Family {
	out := make([]Family, 0, len(families))
	for _, n := range FamilyNames() {
		out = append(out, families[n])
	}
	return out
}

// Build materializes a Spec: it resolves the family, validates and defaults
// the parameters, and runs the generator (or, for FromFile families, the
// installed file resolver).
func Build(s Spec) (*Graph, error) {
	f, ok := families[s.Family]
	if !ok {
		return nil, fmt.Errorf("unknown graph family %q (have %s)",
			s.Family, strings.Join(FamilyNames(), ", "))
	}
	if f.FromFile {
		if s.File == "" {
			return nil, fmt.Errorf("graph family %s: missing file reference", s.Family)
		}
		g, err := fileResolver(s.File)
		if err != nil {
			return nil, fmt.Errorf("graph family %s: %w", s.Family, err)
		}
		return g, nil
	}
	if s.File != "" {
		return nil, fmt.Errorf("graph family %s: file reference only valid for the file family", s.Family)
	}
	v, err := param.Resolve(s.Params, f.Params)
	if err != nil {
		return nil, fmt.Errorf("graph family %s: %w", s.Family, err)
	}
	g, err := f.Build(v, s.Seed)
	if err != nil {
		return nil, fmt.Errorf("graph family %s: %w", s.Family, err)
	}
	return g, nil
}

// needPositive rejects non-positive size parameters before they reach a
// generator (where they would build nonsense or panic).
func needPositive(v param.Values, names ...string) error {
	for _, name := range names {
		if v.Int(name) < 1 {
			return fmt.Errorf("param %s = %d, need >= 1", name, v.Int(name))
		}
	}
	return nil
}

func init() {
	nDef := param.Int("n", 64, "number of nodes")
	RegisterFamily(Family{
		Name: "gnm", Desc: "uniform random graph with exactly m edges", Seeded: true,
		Params: []param.Def{nDef, param.Int("m", 0, "edge count (0 = 3n)")},
		Build: func(v param.Values, seed int64) (*Graph, error) {
			if err := needPositive(v, "n"); err != nil {
				return nil, err
			}
			m := v.Int("m")
			if m == 0 {
				m = 3 * v.Int("n")
			}
			return GNM(v.Int("n"), m, seed), nil
		},
	})
	RegisterFamily(Family{
		Name: "gnp", Desc: "Erdos-Renyi G(n, p)", Seeded: true,
		Params: []param.Def{nDef, param.Float("p", 0.1, "edge probability")},
		Build: func(v param.Values, seed int64) (*Graph, error) {
			if err := needPositive(v, "n"); err != nil {
				return nil, err
			}
			if p := v.Float("p"); p < 0 || p > 1 {
				return nil, fmt.Errorf("param p = %v out of [0,1]", p)
			}
			return GNP(v.Int("n"), v.Float("p"), seed), nil
		},
	})
	RegisterFamily(Family{
		Name: "kforest", Desc: "union of k random spanning trees (arboricity <= k)", Seeded: true,
		Params: []param.Def{nDef, param.Int("k", 2, "number of superimposed trees")},
		Build: func(v param.Values, seed int64) (*Graph, error) {
			if err := needPositive(v, "n", "k"); err != nil {
				return nil, err
			}
			return KForest(v.Int("n"), v.Int("k"), seed), nil
		},
	})
	RegisterFamily(Family{
		Name: "pa", Desc: "preferential attachment with k links per new node (heavy-tailed degrees)", Seeded: true,
		Params: []param.Def{nDef, param.Int("k", 2, "attachments per node")},
		Build: func(v param.Values, seed int64) (*Graph, error) {
			if err := needPositive(v, "n", "k"); err != nil {
				return nil, err
			}
			return PreferentialAttachment(v.Int("n"), v.Int("k"), seed), nil
		},
	})
	RegisterFamily(Family{
		Name: "tree", Desc: "uniform-attachment random tree", Seeded: true,
		Params: []param.Def{nDef},
		Build: func(v param.Values, seed int64) (*Graph, error) {
			if err := needPositive(v, "n"); err != nil {
				return nil, err
			}
			return RandomTree(v.Int("n"), seed), nil
		},
	})
	RegisterFamily(Family{
		Name: "bipartite", Desc: "random bipartite graph between parts of size n1 and n2", Seeded: true,
		Params: []param.Def{
			param.Int("n1", 32, "size of the first part"),
			param.Int("n2", 32, "size of the second part"),
			param.Float("p", 0.1, "edge probability"),
		},
		Build: func(v param.Values, seed int64) (*Graph, error) {
			if err := needPositive(v, "n1", "n2"); err != nil {
				return nil, err
			}
			return Bipartite(v.Int("n1"), v.Int("n2"), v.Float("p"), seed), nil
		},
	})
	RegisterFamily(Family{
		Name: "grid", Desc: "rows x cols grid (planar, arboricity <= 3)",
		Params: []param.Def{param.Int("rows", 8, "grid rows"), param.Int("cols", 8, "grid cols")},
		Build: func(v param.Values, _ int64) (*Graph, error) {
			if err := needPositive(v, "rows", "cols"); err != nil {
				return nil, err
			}
			return Grid(v.Int("rows"), v.Int("cols")), nil
		},
	})
	RegisterFamily(Family{
		Name: "torus", Desc: "rows x cols torus (grid with wraparound)",
		Params: []param.Def{param.Int("rows", 8, "torus rows"), param.Int("cols", 8, "torus cols")},
		Build: func(v param.Values, _ int64) (*Graph, error) {
			if err := needPositive(v, "rows", "cols"); err != nil {
				return nil, err
			}
			return Torus(v.Int("rows"), v.Int("cols")), nil
		},
	})
	RegisterFamily(Family{
		Name: "hypercube", Desc: "k-dimensional hypercube on 2^k nodes",
		Params: []param.Def{param.Int("k", 2, "dimension (n = 2^k)")},
		Build: func(v param.Values, _ int64) (*Graph, error) {
			k := v.Int("k")
			if k < 0 || k > 24 {
				return nil, fmt.Errorf("param k = %d out of [0,24]", k)
			}
			return Hypercube(k), nil
		},
	})
	for _, simple := range []struct {
		name, desc string
		build      func(n int) *Graph
	}{
		{"star", "star with center 0 (the naive-communication worst case)", Star},
		{"cycle", "the n-cycle", Cycle},
		{"path", "the path 0-1-...-(n-1)", Path},
		{"binarytree", "complete-ish binary tree", BinaryTree},
		{"caterpillar", "path spine with one leg per spine node", Caterpillar},
		{"complete", "the complete graph K_n", Complete},
		{"empty", "the edgeless graph", Empty},
	} {
		build := simple.build
		RegisterFamily(Family{
			Name: simple.name, Desc: simple.desc,
			Params: []param.Def{nDef},
			Build: func(v param.Values, _ int64) (*Graph, error) {
				if err := needPositive(v, "n"); err != nil {
					return nil, err
				}
				return build(v.Int("n")), nil
			},
		})
	}
	RegisterFamily(Family{
		Name: "file", Desc: "ingested graph loaded from the content-addressed store by .nccg hash",
		FromFile: true,
		Build: func(param.Values, int64) (*Graph, error) {
			return nil, fmt.Errorf("file family builds through the file resolver")
		},
	})
	RegisterFamily(Family{
		Name: "disjoint", Desc: "disjoint union of `parts` cliques of size `size`",
		Params: []param.Def{param.Int("parts", 4, "number of cliques"), param.Int("size", 8, "clique size")},
		Build: func(v param.Values, _ int64) (*Graph, error) {
			if err := needPositive(v, "parts", "size"); err != nil {
				return nil, err
			}
			return Disjoint(v.Int("parts"), v.Int("size")), nil
		},
	})
}
