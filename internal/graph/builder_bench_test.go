package graph

import (
	"fmt"
	"testing"
)

// BenchmarkBuilderBuild pins the cost of the append/sort/dedupe edge path on a
// dense-ish generated workload (satellite of the map-removal refactor).
func BenchmarkBuilderBuild(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16} {
		b.Run(fmt.Sprintf("kforest/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := KForest(n, 4, 7)
				if g.M() == 0 {
					b.Fatal("empty graph")
				}
			}
		})
	}
}

// TestBuilderAllocBudget asserts the builder's allocation count stays flat:
// one edge buffer (amortized growth), the degree array, the CSR backing array,
// and the adjacency headers — not one allocation per edge like the old
// map-backed path.
func TestBuilderAllocBudget(t *testing.T) {
	const n, edges = 1 << 12, 1 << 14
	allocs := testing.AllocsPerRun(5, func() {
		b := NewBuilder(n)
		for i := 0; i < edges; i++ {
			b.AddEdge(i%n, (i*2_654_435_761+1)%n)
		}
		if g := b.Build(); g.N() != n {
			t.Fatal("bad build")
		}
	})
	// Edge-buffer doubling contributes O(log edges) appends; everything else is
	// constant. 64 is far below the old map path (one bucket per ~8 edges).
	if allocs > 64 {
		t.Fatalf("Build allocated %v times for %d edges; want flat (<= 64)", allocs, edges)
	}
}
