package graph

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"

	"ncc/internal/param"
)

// CapacitySpec is the serializable "which capacities" half of a scenario's
// heterogeneous-capacity block: a registered policy name, its parameter bag,
// and — for the explicit policy — a literal per-node capacity list.
type CapacitySpec struct {
	Policy string       `json:"policy"`
	Params param.Values `json:"params,omitempty"`
	Values []float64    `json:"values,omitempty"`
}

// CapacityPolicy is a registered way of assigning each node its own per-round
// message capacity, given the built graph and the model's uniform base
// capacity (capfactor * ceil(log2 n)). Policies self-register at init time;
// the scenario runner and the CLIs resolve them exclusively through this
// registry. Build returns nil to mean "uniform: every node gets the base" —
// the canonical spelling of homogeneous capacities.
//
// Unless a policy documents otherwise, produced capacities are floored at
// ceil(log2 n): the comm collectives inject Theta(log n) messages per round,
// and a node below that floor could not run them at all.
type CapacityPolicy struct {
	Name string
	Desc string
	// Params declares the accepted parameters; Build receives a bag that has
	// been validated and defaulted against them.
	Params []param.Def
	// NeedsValues marks policies that consume a CapacitySpec's explicit
	// per-node Values list.
	NeedsValues bool
	Build       func(g *Graph, base int, v param.Values, values []float64) ([]int, error)
}

var capacityPolicies = map[string]CapacityPolicy{}

// RegisterCapacityPolicy adds a policy to the registry; duplicate or anonymous
// registrations are programming errors.
func RegisterCapacityPolicy(p CapacityPolicy) {
	if p.Name == "" || p.Build == nil {
		panic("graph: RegisterCapacityPolicy needs a name and a build function")
	}
	if _, dup := capacityPolicies[p.Name]; dup {
		panic(fmt.Sprintf("graph: capacity policy %q registered twice", p.Name))
	}
	capacityPolicies[p.Name] = p
}

// GetCapacityPolicy looks up a registered policy.
func GetCapacityPolicy(name string) (CapacityPolicy, bool) {
	p, ok := capacityPolicies[name]
	return p, ok
}

// CapacityPolicyNames lists registered policies in sorted order.
func CapacityPolicyNames() []string {
	out := make([]string, 0, len(capacityPolicies))
	for n := range capacityPolicies {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CapacityPolicies returns every registered policy, ordered by name.
func CapacityPolicies() []CapacityPolicy {
	out := make([]CapacityPolicy, 0, len(capacityPolicies))
	for _, n := range CapacityPolicyNames() {
		out = append(out, capacityPolicies[n])
	}
	return out
}

// ValidateCapacitySpec statically checks a spec: the policy exists, its
// parameter bag resolves, and explicit values (where the policy takes them)
// are integral capacities >= 1. n > 0 additionally pins the expected values
// length (0 means the clique size is not statically known). Error messages
// name the offending field relative to the spec, so callers can prefix their
// own path.
func ValidateCapacitySpec(s CapacitySpec, n int) error {
	p, ok := capacityPolicies[s.Policy]
	if !ok {
		return fmt.Errorf("policy %q unknown (have %s)", s.Policy, strings.Join(CapacityPolicyNames(), ", "))
	}
	if _, err := param.Resolve(s.Params, p.Params); err != nil {
		return fmt.Errorf("params: %w", err)
	}
	if len(s.Values) > 0 && !p.NeedsValues {
		return fmt.Errorf("values: policy %s takes no explicit values", s.Policy)
	}
	if p.NeedsValues {
		if len(s.Values) == 0 {
			return fmt.Errorf("values: policy %s requires a per-node capacity list", s.Policy)
		}
		if n > 0 && len(s.Values) != n {
			return fmt.Errorf("values: %d entries for %d nodes", len(s.Values), n)
		}
		for i, v := range s.Values {
			if v < 1 || v != math.Trunc(v) {
				return fmt.Errorf("values[%d] = %v, need an integer >= 1", i, v)
			}
		}
	}
	return nil
}

// BuildCapacities materializes a spec against a built graph and the model's
// uniform base capacity. A nil result means uniform capacities (every node
// gets base); a non-nil result has exactly g.N() entries, each >= 1.
func BuildCapacities(s CapacitySpec, g *Graph, base int) ([]int, error) {
	p, ok := capacityPolicies[s.Policy]
	if !ok {
		return nil, fmt.Errorf("capacity policy %q unknown (have %s)", s.Policy, strings.Join(CapacityPolicyNames(), ", "))
	}
	v, err := param.Resolve(s.Params, p.Params)
	if err != nil {
		return nil, fmt.Errorf("capacity policy %s: %w", s.Policy, err)
	}
	if len(s.Values) > 0 && !p.NeedsValues {
		return nil, fmt.Errorf("capacity policy %s takes no explicit values", s.Policy)
	}
	caps, err := p.Build(g, base, v, s.Values)
	if err != nil {
		return nil, fmt.Errorf("capacity policy %s: %w", s.Policy, err)
	}
	if caps != nil && len(caps) != g.N() {
		return nil, fmt.Errorf("capacity policy %s produced %d capacities for %d nodes", s.Policy, len(caps), g.N())
	}
	return caps, nil
}

// capFloor is the default lower bound on any produced capacity: one log
// factor, the least that keeps the Theta(log n)-batch collectives runnable.
func capFloor(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// scaleCaps assigns cap_u = round(base * w_u / mean(w)), floored at floor:
// weights are relative bandwidth shares normalized so the mean node keeps the
// uniform base capacity.
func scaleCaps(base, floor int, n int, weight func(u int) float64) []int {
	total := 0.0
	for u := 0; u < n; u++ {
		total += weight(u)
	}
	mean := total / float64(n)
	caps := make([]int, n)
	for u := 0; u < n; u++ {
		c := base
		if mean > 0 {
			c = int(math.Round(float64(base) * weight(u) / mean))
		}
		caps[u] = max(floor, c)
	}
	return caps
}

func init() {
	minDef := param.Int("min", 0, "capacity floor in messages (0 = ceil(log2 n), the collectives' minimum)")
	RegisterCapacityPolicy(CapacityPolicy{
		Name: "uniform",
		Desc: "every node gets the model's base capacity (the canonical homogeneous spelling)",
		Build: func(g *Graph, base int, v param.Values, _ []float64) ([]int, error) {
			return nil, nil
		},
	})
	RegisterCapacityPolicy(CapacityPolicy{
		Name:   "degree",
		Desc:   "capacity proportional to degree, normalized to the base at the average degree (the paper's weighted-capacity extension)",
		Params: []param.Def{minDef},
		Build: func(g *Graph, base int, v param.Values, _ []float64) ([]int, error) {
			floor := v.Int("min")
			if floor <= 0 {
				floor = capFloor(g.N())
			}
			return scaleCaps(base, floor, g.N(), func(u int) float64 { return float64(g.Degree(u)) }), nil
		},
	})
	RegisterCapacityPolicy(CapacityPolicy{
		Name:   "file",
		Desc:   "capacity proportional to the graph's embedded per-node weights (from its .nccg capacity array)",
		Params: []param.Def{minDef},
		Build: func(g *Graph, base int, v param.Values, _ []float64) ([]int, error) {
			w := g.CapacityWeights()
			if w == nil {
				return nil, fmt.Errorf("graph carries no capacity weights (ingest with an explicit capacity array)")
			}
			floor := v.Int("min")
			if floor <= 0 {
				floor = capFloor(g.N())
			}
			return scaleCaps(base, floor, g.N(), func(u int) float64 { return float64(w[u]) }), nil
		},
	})
	RegisterCapacityPolicy(CapacityPolicy{
		Name:        "explicit",
		Desc:        "absolute per-node capacities listed in the scenario's values array (no log-floor: you own the consequences)",
		NeedsValues: true,
		Build: func(g *Graph, base int, v param.Values, values []float64) ([]int, error) {
			if len(values) != g.N() {
				return nil, fmt.Errorf("%d values for %d nodes", len(values), g.N())
			}
			caps := make([]int, len(values))
			for i, f := range values {
				if f < 1 || f != math.Trunc(f) {
					return nil, fmt.Errorf("values[%d] = %v, need an integer >= 1", i, f)
				}
				caps[i] = int(f)
			}
			return caps, nil
		},
	})
}
