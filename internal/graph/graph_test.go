package graph

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderDedup(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(2, 2) // self-loop ignored
	b.AddEdge(2, 3)
	g := b.Build()
	if g.M() != 2 {
		t.Errorf("m = %d, want 2", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || !g.HasEdge(3, 2) {
		t.Error("edges missing")
	}
	if g.HasEdge(0, 2) || g.HasEdge(2, 2) {
		t.Error("phantom edges")
	}
}

func TestDegreesAndEdges(t *testing.T) {
	g := Star(6)
	if g.Degree(0) != 5 || g.Degree(3) != 1 {
		t.Errorf("star degrees wrong: %d, %d", g.Degree(0), g.Degree(3))
	}
	if g.MaxDegree() != 5 {
		t.Errorf("max degree = %d", g.MaxDegree())
	}
	count := 0
	g.Edges(func(u, v int) {
		if u != 0 {
			t.Errorf("star edge (%d,%d) not incident to center", u, v)
		}
		count++
	})
	if count != 5 {
		t.Errorf("Edges visited %d, want 5", count)
	}
}

func TestGeneratorShapes(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		n, m int
	}{
		{"empty", Empty(5), 5, 0},
		{"complete", Complete(6), 6, 15},
		{"path", Path(7), 7, 6},
		{"cycle", Cycle(7), 7, 7},
		{"star", Star(9), 9, 8},
		{"grid", Grid(3, 4), 12, 17},
		{"torus", Torus(3, 4), 12, 24},
		{"hypercube", Hypercube(4), 16, 32},
		{"binarytree", BinaryTree(10), 10, 9},
		{"caterpillar", Caterpillar(10), 10, 9},
		{"disjoint", Disjoint(3, 4), 12, 18},
	}
	for _, c := range cases {
		if c.g.N() != c.n || c.g.M() != c.m {
			t.Errorf("%s: n=%d m=%d, want n=%d m=%d", c.name, c.g.N(), c.g.M(), c.n, c.m)
		}
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := RandomTree(50, seed)
		if g.M() != 49 {
			t.Errorf("seed %d: tree has %d edges", seed, g.M())
		}
		if _, nc := Components(g); nc != 1 {
			t.Errorf("seed %d: tree has %d components", seed, nc)
		}
	}
}

func TestKForestArboricity(t *testing.T) {
	for _, k := range []int{1, 2, 4, 8} {
		g := KForest(100, k, 42)
		d, _ := Degeneracy(g)
		// Arboricity <= k, so degeneracy <= 2k-1.
		if d > 2*k-1 {
			t.Errorf("k=%d: degeneracy %d exceeds 2k-1", k, d)
		}
		if lb := ArboricityLowerBound(g); lb > k {
			t.Errorf("k=%d: Nash-Williams bound %d exceeds k", k, lb)
		}
		if _, nc := Components(g); nc != 1 {
			t.Errorf("k=%d: forest union disconnected", k)
		}
	}
}

func TestGNPDeterministic(t *testing.T) {
	g1 := GNP(40, 0.2, 7)
	g2 := GNP(40, 0.2, 7)
	if g1.M() != g2.M() {
		t.Error("same seed produced different graphs")
	}
}

func TestGNMEdgeCount(t *testing.T) {
	g := GNM(30, 60, 3)
	if g.M() != 60 {
		t.Errorf("GNM produced %d edges, want 60", g.M())
	}
	g = GNM(5, 100, 3) // clamped to complete graph
	if g.M() != 10 {
		t.Errorf("GNM clamp produced %d edges, want 10", g.M())
	}
}

func TestComponents(t *testing.T) {
	g := Disjoint(3, 5)
	comp, nc := Components(g)
	if nc != 3 {
		t.Fatalf("components = %d, want 3", nc)
	}
	for u := 0; u < g.N(); u++ {
		if comp[u] != u/5 {
			t.Errorf("comp[%d] = %d, want %d", u, comp[u], u/5)
		}
	}
}

func TestBFSDistancesOnGrid(t *testing.T) {
	g := Grid(4, 5)
	dist, parent := BFSDistances(g, 0)
	for r := 0; r < 4; r++ {
		for c := 0; c < 5; c++ {
			id := r*5 + c
			if dist[id] != r+c {
				t.Errorf("dist[%d] = %d, want %d", id, dist[id], r+c)
			}
			if id != 0 && dist[parent[id]] != dist[id]-1 {
				t.Errorf("parent of %d has distance %d", id, dist[parent[id]])
			}
		}
	}
}

func TestDiameter(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int
	}{
		{Path(10), 9},
		{Cycle(10), 5},
		{Star(10), 2},
		{Grid(3, 7), 8},
		{Complete(5), 1},
		{Disjoint(2, 3), -1},
	}
	for i, c := range cases {
		if d := Diameter(c.g); d != c.want {
			t.Errorf("case %d: diameter = %d, want %d", i, d, c.want)
		}
	}
}

func TestDegeneracy(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int
	}{
		{Path(10), 1},
		{Star(10), 1},
		{BinaryTree(15), 1},
		{Cycle(10), 2},
		{Complete(6), 5},
		{Grid(5, 5), 2},
	}
	for i, c := range cases {
		got, ord := Degeneracy(c.g)
		if got != c.want {
			t.Errorf("case %d: degeneracy = %d, want %d", i, got, c.want)
		}
		if len(ord) != c.g.N() {
			t.Errorf("case %d: order has %d nodes", i, len(ord))
		}
	}
}

// Degeneracy ordering property: each node, at removal time, has at most
// `degeneracy` neighbors remaining.
func TestDegeneracyOrderProperty(t *testing.T) {
	check := func(seed int64, n8 uint8, p8 uint8) bool {
		n := 5 + int(n8)%40
		p := 0.05 + float64(p8%50)/100
		g := GNP(n, p, seed)
		k, order := Degeneracy(g)
		pos := make([]int, n)
		for i, u := range order {
			pos[u] = i
		}
		for _, u := range order {
			later := 0
			for _, v := range g.Neighbors(u) {
				if pos[v] > pos[u] {
					later++
				}
			}
			if later > k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestWeights(t *testing.T) {
	g := Path(5)
	wg := RandomWeights(g, 100, 9)
	g.Edges(func(u, v int) {
		w := wg.Weight(u, v)
		if w < 1 || w > 100 {
			t.Errorf("weight(%d,%d) = %d out of range", u, v, w)
		}
		if wg.Weight(v, u) != w {
			t.Errorf("weight not symmetric on (%d,%d)", u, v)
		}
	})
	wg.SetWeight(0, 1, 55)
	if wg.Weight(1, 0) != 55 {
		t.Error("SetWeight not visible symmetrically")
	}
	if wg.TotalWeight() < 4 {
		t.Error("total weight too small")
	}
}

func TestPreferentialAttachmentConnected(t *testing.T) {
	g := PreferentialAttachment(200, 3, 5)
	if _, nc := Components(g); nc != 1 {
		t.Errorf("PA graph disconnected: %d components", nc)
	}
	d, _ := Degeneracy(g)
	if d > 2*3 {
		t.Errorf("PA degeneracy %d too large for k=3", d)
	}
}

func TestBipartite(t *testing.T) {
	g := Bipartite(10, 15, 1.0, 1)
	if g.M() != 150 {
		t.Errorf("complete bipartite m = %d, want 150", g.M())
	}
	for u := 0; u < 10; u++ {
		for v := 0; v < 10; v++ {
			if u != v && g.HasEdge(u, v) {
				t.Fatalf("edge inside part: (%d,%d)", u, v)
			}
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := Path(3)
	var buf strings.Builder
	if err := g.WriteDOT(&buf, "p3", func(u int) string { return fmt.Sprintf("v%d", u) }); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`graph "p3"`, "0 -- 1", "1 -- 2", `label="v1"`} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "0 -- 2") {
		t.Error("DOT output contains phantom edge")
	}
}

func TestArticulationPoints(t *testing.T) {
	// Path: every inner node is a cut vertex.
	if got := ArticulationPoints(Path(5)); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Errorf("path: %v, want [1 2 3]", got)
	}
	// Cycle and complete graph: 2-connected, no cut vertices.
	if got := ArticulationPoints(Cycle(6)); got != nil {
		t.Errorf("cycle: %v, want none", got)
	}
	if got := ArticulationPoints(Complete(5)); got != nil {
		t.Errorf("complete: %v, want none", got)
	}
	// Star: the hub alone.
	if got := ArticulationPoints(Star(7)); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("star: %v, want [0]", got)
	}
	// Two triangles sharing node 2 plus an isolated node: 2 is the cut.
	b := NewBuilder(7)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}} {
		b.AddEdge(e[0], e[1])
	}
	if got := ArticulationPoints(b.Build()); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("bowtie: %v, want [2]", got)
	}
	// Brute-force cross-check on a random sparse graph: removing a reported
	// cut vertex must increase the component count, and only those.
	g := KForest(32, 2, 9)
	cuts := map[int]bool{}
	for _, u := range ArticulationPoints(g) {
		cuts[u] = true
	}
	_, base := Components(g)
	for u := 0; u < g.N(); u++ {
		nb := NewBuilder(g.N())
		for v := 0; v < g.N(); v++ {
			if v == u {
				continue
			}
			for _, w := range g.Neighbors(v) {
				if int(w) != u && v < int(w) {
					nb.AddEdge(v, int(w))
				}
			}
		}
		_, c := Components(nb.Build())
		// Removing u leaves its slot as an isolated node: +1 component always.
		if got := c-1 > base; got != cuts[u] {
			t.Errorf("node %d: brute-force cut=%v, reported=%v", u, got, cuts[u])
		}
	}
}
