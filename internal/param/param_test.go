package param

import (
	"strings"
	"testing"
)

func defs() []Def {
	return []Def{
		Int("n", 64, "nodes"),
		Float("p", 0.1, "edge probability"),
	}
}

func TestResolveAppliesDefaults(t *testing.T) {
	v, err := Resolve(nil, defs())
	if err != nil {
		t.Fatal(err)
	}
	if v.Int("n") != 64 || v.Float("p") != 0.1 {
		t.Errorf("defaults not applied: %v", v)
	}
}

func TestResolveOverrides(t *testing.T) {
	v, err := Resolve(Values{"n": 128}, defs())
	if err != nil {
		t.Fatal(err)
	}
	if v.Int("n") != 128 || v.Float("p") != 0.1 {
		t.Errorf("override lost: %v", v)
	}
}

func TestResolveRejectsUnknown(t *testing.T) {
	_, err := Resolve(Values{"bogus": 1}, defs())
	if err == nil || !strings.Contains(err.Error(), "unknown params bogus") {
		t.Errorf("err = %v, want unknown-params error", err)
	}
}

func TestResolveRejectsFractionalInt(t *testing.T) {
	_, err := Resolve(Values{"n": 1.5}, defs())
	if err == nil || !strings.Contains(err.Error(), "must be an integer") {
		t.Errorf("err = %v, want integrality error", err)
	}
}

func TestResolveDoesNotMutateInput(t *testing.T) {
	in := Values{"n": 8}
	if _, err := Resolve(in, defs()); err != nil {
		t.Fatal(err)
	}
	if len(in) != 1 {
		t.Errorf("input mutated: %v", in)
	}
}

func TestDescribe(t *testing.T) {
	got := Describe(defs())
	if got != "n=64 p=0.1" {
		t.Errorf("Describe = %q", got)
	}
}
