// Package param declares named, typed, defaultable numeric parameters — the
// shared vocabulary of the graph-family and algorithm registries. Values are
// float64 because that is what JSON numbers decode to; integer parameters are
// declared as such and validated for integrality.
package param

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Def describes one declared parameter.
type Def struct {
	// Name keys the parameter in a Values bag (and in JSON scenario files).
	Name string `json:"name"`
	// Desc is a one-line human description shown by the CLIs' -list mode.
	Desc string `json:"desc,omitempty"`
	// Default is the value used when the parameter is absent.
	Default float64 `json:"default"`
	// IsInt requires the supplied value to be integral.
	IsInt bool `json:"int,omitempty"`
}

// Int declares an integer parameter.
func Int(name string, def int, desc string) Def {
	return Def{Name: name, Desc: desc, Default: float64(def), IsInt: true}
}

// Float declares a floating-point parameter.
func Float(name string, def float64, desc string) Def {
	return Def{Name: name, Desc: desc, Default: def}
}

// Values is a bag of named parameter values, as decoded from CLI flags or a
// JSON scenario file.
type Values map[string]float64

// Int reads an integer parameter. The value must have been validated and
// defaulted against the owning registry entry first.
func (v Values) Int(name string) int { return int(v[name]) }

// Int64 reads an integer parameter as int64.
func (v Values) Int64(name string) int64 { return int64(v[name]) }

// Float reads a floating-point parameter.
func (v Values) Float(name string) float64 { return v[name] }

// Clone returns a copy of v (nil stays nil-equivalent: an empty map).
func (v Values) Clone() Values {
	out := make(Values, len(v))
	for k, val := range v {
		out[k] = val
	}
	return out
}

// Names lists the declared parameter names.
func Names(defs []Def) []string {
	out := make([]string, len(defs))
	for i, d := range defs {
		out[i] = d.Name
	}
	return out
}

// Describe renders a compact "name=default (desc)" list for -list output.
func Describe(defs []Def) string {
	parts := make([]string, len(defs))
	for i, d := range defs {
		if d.IsInt {
			parts[i] = fmt.Sprintf("%s=%d", d.Name, int(d.Default))
		} else {
			parts[i] = fmt.Sprintf("%s=%g", d.Name, d.Default)
		}
	}
	return strings.Join(parts, " ")
}

// Resolve validates v against defs and returns a complete bag: every declared
// parameter present (defaults applied), no undeclared names, integer
// parameters integral.
func Resolve(v Values, defs []Def) (Values, error) {
	out := make(Values, len(defs))
	for _, d := range defs {
		out[d.Name] = d.Default
	}
	var unknown []string
	for name, val := range v {
		found := false
		for _, d := range defs {
			if d.Name != name {
				continue
			}
			found = true
			if d.IsInt && val != math.Trunc(val) {
				return nil, fmt.Errorf("param %s = %v must be an integer", name, val)
			}
			out[name] = val
		}
		if !found {
			unknown = append(unknown, name)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return nil, fmt.Errorf("unknown params %s (declared: %s)",
			strings.Join(unknown, ", "), strings.Join(Names(defs), ", "))
	}
	return out, nil
}
