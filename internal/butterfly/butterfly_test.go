package butterfly

import (
	"testing"
	"testing/quick"
)

func TestGeometry(t *testing.T) {
	cases := []struct{ n, d, cols int }{
		{2, 1, 2}, {3, 1, 2}, {4, 2, 4}, {5, 2, 4}, {7, 2, 4}, {8, 3, 8}, {9, 3, 8}, {16, 4, 16}, {1000, 9, 512},
	}
	for _, c := range cases {
		b := New(c.n)
		if b.D != c.d || b.Cols != c.cols {
			t.Errorf("New(%d): d=%d cols=%d, want d=%d cols=%d", c.n, b.D, b.Cols, c.d, c.cols)
		}
	}
}

func TestAttachment(t *testing.T) {
	b := New(11) // cols = 8, attached: 8, 9, 10 -> columns 0, 1, 2
	for id := 0; id < 8; id++ {
		if !b.IsEmulator(id) {
			t.Errorf("node %d should be an emulator", id)
		}
	}
	for id := 8; id < 11; id++ {
		col, ok := b.AttachedColumn(id)
		if !ok || col != id-8 {
			t.Errorf("AttachedColumn(%d) = %d,%v", id, col, ok)
		}
		back, ok := b.AttachedNode(col)
		if !ok || back != id {
			t.Errorf("AttachedNode(%d) = %d,%v", col, back, ok)
		}
	}
	if _, ok := b.AttachedNode(5); ok {
		t.Error("column 5 should have no attached node for n=11")
	}
}

func TestEveryNodeIsEmulatorOrAttached(t *testing.T) {
	check := func(n16 uint16) bool {
		n := 2 + int(n16)%500
		b := New(n)
		for id := 0; id < n; id++ {
			if b.IsEmulator(id) {
				continue
			}
			col, ok := b.AttachedColumn(id)
			if !ok || col < 0 || col >= b.Cols {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDownUpNeighborInverse(t *testing.T) {
	b := New(64)
	for level := 0; level < b.D; level++ {
		for col := 0; col < b.Cols; col++ {
			for bit := 0; bit <= 1; bit++ {
				nc := b.DownNeighbor(level, col, bit)
				side := b.UpSideOf(level, col, nc)
				if b.UpNeighbor(level, nc, side) != col {
					t.Fatalf("up/down mismatch at level=%d col=%d bit=%d", level, col, bit)
				}
			}
		}
	}
}

func TestBitFixingReachesDestination(t *testing.T) {
	// Following the edge selected by EdgeIsCross from any source column must
	// reach any destination column after D hops.
	b := New(32)
	for src := 0; src < b.Cols; src++ {
		for dst := 0; dst < b.Cols; dst++ {
			col := src
			for level := 0; level < b.D; level++ {
				col = b.DownNeighbor(level, col, (dst>>level)&1)
			}
			if col != dst {
				t.Fatalf("bit fixing from %d to %d ended at %d", src, dst, col)
			}
		}
	}
}

func TestReductionTree(t *testing.T) {
	const d = 4
	cols := 1 << d
	// Every nonzero column's parent must list it as a child.
	for col := 1; col < cols; col++ {
		p := ReduceParent(col)
		found := false
		for _, c := range ReduceChildren(p, d) {
			if c == col {
				found = true
			}
		}
		if !found {
			t.Errorf("column %d missing from children of parent %d", col, p)
		}
		if ReduceDepth(col) != ReduceDepth(p)+1 {
			t.Errorf("depth(%d)=%d, depth(parent %d)=%d", col, ReduceDepth(col), p, ReduceDepth(p))
		}
	}
	// The tree spans all columns exactly once.
	seen := map[int]bool{0: true}
	frontier := []int{0}
	for len(frontier) > 0 {
		var next []int
		for _, c := range frontier {
			for _, ch := range ReduceChildren(c, d) {
				if seen[ch] {
					t.Fatalf("column %d reached twice", ch)
				}
				seen[ch] = true
				next = append(next, ch)
			}
		}
		frontier = next
	}
	if len(seen) != cols {
		t.Errorf("reduction tree spans %d columns, want %d", len(seen), cols)
	}
	// Depth is bounded by d.
	for col := 0; col < cols; col++ {
		if ReduceDepth(col) > d {
			t.Errorf("depth(%d) = %d exceeds d = %d", col, ReduceDepth(col), d)
		}
	}
}
