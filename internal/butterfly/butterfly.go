// Package butterfly describes the d-dimensional butterfly network that the
// paper's communication primitives emulate on the Node-Capacitated Clique
// (Section 2.2): for d = floor(log2 n), the butterfly has node set
// [d+1] x [2^d]; node u < 2^d of the clique emulates the complete column u,
// and every remaining clique node (id >= 2^d) is attached to the level-0
// butterfly node of column id - 2^d.
//
// Because the butterfly has constant degree and each clique node emulates
// d+1 = O(log n) butterfly nodes, one butterfly communication round maps to
// one clique round within the O(log n) message capacity.
package butterfly

import "ncc/internal/ncc"

// Butterfly is the emulation geometry for an n-node clique.
type Butterfly struct {
	// N is the number of clique nodes.
	N int
	// D is the butterfly dimension, floor(log2 N).
	D int
	// Cols is the number of columns, 2^D.
	Cols int
}

// New computes the butterfly geometry for n >= 2 clique nodes.
func New(n int) *Butterfly {
	if n < 2 {
		panic("butterfly: need at least 2 nodes")
	}
	d := ncc.FloorLog2(n)
	return &Butterfly{N: n, D: d, Cols: 1 << d}
}

// Levels returns the number of butterfly levels, D+1.
func (b *Butterfly) Levels() int { return b.D + 1 }

// IsEmulator reports whether clique node id emulates a butterfly column.
func (b *Butterfly) IsEmulator(id ncc.NodeID) bool { return id < b.Cols }

// Column returns the butterfly column emulated by clique node id, which must
// be an emulator.
func (b *Butterfly) Column(id ncc.NodeID) int {
	if !b.IsEmulator(id) {
		panic("butterfly: node is not an emulator")
	}
	return id
}

// Host returns the clique node emulating column col.
func (b *Butterfly) Host(col int) ncc.NodeID { return col }

// AttachedColumn returns the level-0 column that clique node id >= Cols is
// attached to, and whether id is an attached node at all.
func (b *Butterfly) AttachedColumn(id ncc.NodeID) (int, bool) {
	if b.IsEmulator(id) {
		return 0, false
	}
	return id - b.Cols, true
}

// AttachedNode returns the clique node attached to column col, if any.
func (b *Butterfly) AttachedNode(col int) (ncc.NodeID, bool) {
	id := col + b.Cols
	if id < b.N {
		return id, true
	}
	return 0, false
}

// DownNeighbor returns the column of the level-(level+1) butterfly node
// reached from (level, col) by the edge that sets bit `level` of the column
// to `bit`. The straight edge keeps the column; the cross edge flips bit
// `level`.
func (b *Butterfly) DownNeighbor(level, col, bit int) int {
	if bit == 1 {
		return col | 1<<level
	}
	return col &^ (1 << level)
}

// EdgeIsCross reports whether routing from (level, col) toward destination
// column dest uses the cross edge (column changes) at this level.
func (b *Butterfly) EdgeIsCross(level, col, dest int) bool {
	return (col>>level)&1 != (dest>>level)&1
}

// UpSideOf returns which up-edge of (level+1, newCol) a packet from
// (level, oldCol) arrived along: 0 for the straight edge, 1 for the cross
// edge.
func (b *Butterfly) UpSideOf(level, oldCol, newCol int) int {
	if oldCol == newCol {
		return 0
	}
	return 1
}

// UpNeighbor returns the column of the level-level butterfly node connected
// to (level+1, col) via up-edge side (0 straight, 1 cross).
func (b *Butterfly) UpNeighbor(level, col, side int) int {
	if side == 0 {
		return col
	}
	return col ^ 1<<level
}

// ReduceParent returns the column of the parent of column col in the
// hypercube reduction tree rooted at column 0 (the aggregation path system of
// the Aggregate-and-Broadcast algorithm): the parent clears the lowest set
// bit. col must be nonzero.
func ReduceParent(col int) int {
	return col & (col - 1)
}

// ReduceChildren appends the children of column col in the reduction tree:
// col + 2^j for every j below the index of col's lowest set bit (or below d
// for the root 0).
func ReduceChildren(col, d int) []int {
	limit := ReduceChildCount(col, d)
	children := make([]int, 0, limit)
	for j := 0; j < limit; j++ {
		children = append(children, ReduceChild(col, j))
	}
	return children
}

// ReduceChildCount returns the number of children of column col in the
// reduction tree — the allocation-free companion of ReduceChildren for hot
// paths that only iterate.
func ReduceChildCount(col, d int) int {
	if col != 0 {
		return trailingZeros(col)
	}
	return d
}

// ReduceChild returns the j-th reduction-tree child of col (j below
// ReduceChildCount).
func ReduceChild(col, j int) int {
	return col | 1<<j
}

// ReduceDepth returns the depth of column col in the reduction tree (number
// of hops to the root 0), which is the popcount of col.
func ReduceDepth(col int) int {
	depth := 0
	for v := col; v != 0; v &= v - 1 {
		depth++
	}
	return depth
}

func trailingZeros(v int) int {
	tz := 0
	for v&1 == 0 {
		tz++
		v >>= 1
	}
	return tz
}
