package faultmodel

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"ncc/internal/graph"
	"ncc/internal/ncc"
	"ncc/internal/param"
)

// churnEventCap bounds the number of liveness transitions one churn spec may
// schedule, so a hostile (rate, horizon) pair cannot make Build allocate an
// unbounded event list.
const churnEventCap = 1 << 13

func init() {
	Register(Model{
		Name:   "iid-drop",
		Desc:   "drop each transmitted message independently with probability p",
		Params: []param.Def{param.Float("p", 0.05, "per-message drop probability")},
		Compile: func(sp Spec, p param.Values, env Env, rng *rand.Rand) (*Schedule, error) {
			prob := p.Float("p")
			if prob < 0 || prob > 1 {
				return nil, fmt.Errorf("p = %v out of [0,1]", prob)
			}
			return &Schedule{DropProb: prob}, nil
		},
	})

	Register(Model{
		Name: "link-cut",
		Desc: "drop every message into the to-set or out of the from-set, from a given round on",
		Params: []param.Def{
			param.Int("fromround", 0, "first round the cut is active"),
		},
		Links: true,
		Compile: func(sp Spec, p param.Values, env Env, rng *rand.Rand) (*Schedule, error) {
			start := p.Int("fromround")
			if start < 0 {
				return nil, fmt.Errorf("fromround = %d, need >= 0", start)
			}
			if len(sp.To) == 0 && len(sp.From) == 0 {
				return nil, fmt.Errorf("needs a non-empty to or from node set")
			}
			to := make(map[ncc.NodeID]bool, len(sp.To))
			for _, v := range sp.To {
				to[v] = true
			}
			from := make(map[ncc.NodeID]bool, len(sp.From))
			for _, v := range sp.From {
				from[v] = true
			}
			return &Schedule{Interceptor: func(round int, src, dst ncc.NodeID) bool {
				if round < start {
					return true
				}
				return !to[dst] && !from[src]
			}}, nil
		},
	})

	Register(Model{
		Name: "crash",
		Desc: "fail-stop a seeded-random set of nodes at one round",
		Params: []param.Def{
			param.Int("count", 1, "number of nodes to kill"),
			param.Int("round", 8, "round the crash fires"),
		},
		Compile: func(sp Spec, p param.Values, env Env, rng *rand.Rand) (*Schedule, error) {
			victims, err := randomVictims(p.Int("count"), p.Int("round"), env, rng)
			if err != nil {
				return nil, err
			}
			return &Schedule{events: []Event{{Round: p.Int("round"), Down: kills(victims)}}}, nil
		},
	})

	Register(Model{
		Name: "crash-recover",
		Desc: "take a seeded-random set of nodes out of service for a fixed window, then revive them",
		Params: []param.Def{
			param.Int("count", 1, "number of nodes to suspend"),
			param.Int("round", 8, "round the outage starts"),
			param.Int("downfor", 32, "rounds out of service"),
			param.Int("reset", 1, "1: revive with fresh volatile state (reseeded rng, cleared outbox)"),
		},
		Compile: func(sp Spec, p param.Values, env Env, rng *rand.Rand) (*Schedule, error) {
			downFor := p.Int("downfor")
			if downFor < 1 {
				return nil, fmt.Errorf("downfor = %d, must be >= 1", downFor)
			}
			victims, err := randomVictims(p.Int("count"), p.Int("round"), env, rng)
			if err != nil {
				return nil, err
			}
			down := make([]ncc.Outage, len(victims))
			up := make([]ncc.Revival, len(victims))
			for i, v := range victims {
				down[i] = ncc.Outage{Node: v}
				up[i] = ncc.Revival{Node: v, Reset: p.Int("reset") != 0}
			}
			return &Schedule{events: []Event{
				{Round: p.Int("round"), Down: down},
				{Round: p.Int("round") + downFor, Up: up},
			}}, nil
		},
	})

	Register(Model{
		Name: "churn",
		Desc: "Poisson node churn: random outages arrive over a horizon, each reviving after an exponential stay",
		Params: []param.Def{
			param.Float("rate", 0.02, "expected outages per round"),
			param.Int("horizon", 1024, "rounds over which churn arrives"),
			param.Int("meandown", 64, "mean rounds a churned node stays out"),
		},
		Compile: func(sp Spec, p param.Values, env Env, rng *rand.Rand) (*Schedule, error) {
			rate := p.Float("rate")
			horizon := p.Int("horizon")
			meanDown := p.Int("meandown")
			if rate < 0 || rate > 8 {
				return nil, fmt.Errorf("rate = %v out of [0,8]", rate)
			}
			if horizon < 1 || meanDown < 1 {
				return nil, fmt.Errorf("horizon = %d and meandown = %d must be >= 1", horizon, meanDown)
			}
			s := &Schedule{}
			// downUntil[v] is the round v rejoins; a node already out is never
			// re-churned, so the schedule stays consistent with engine state.
			downUntil := map[int]int{}
			events := 0
			for r := 0; r < horizon && events < churnEventCap; r++ {
				for k := poisson(rng, rate); k > 0 && events < churnEventCap; k-- {
					v := rng.IntN(env.N)
					if until, out := downUntil[v]; out && r < until {
						continue
					}
					stay := 1 + int(rng.ExpFloat64()*float64(meanDown))
					downUntil[v] = r + stay
					s.events = append(s.events,
						Event{Round: r, Down: []ncc.Outage{{Node: v}}},
						Event{Round: r + stay, Up: []ncc.Revival{{Node: v, Reset: true}}})
					events += 2
				}
			}
			s.normalize()
			return s, nil
		},
	})

	Register(Model{
		Name: "adversarial",
		Desc: "kill the structurally most critical nodes (articulation points, then top degree) at one round",
		Params: []param.Def{
			param.Int("count", 1, "number of nodes to kill"),
			param.Int("round", 8, "round the kill fires"),
			param.Int("cut", 1, "1: prefer articulation points; 0: pure top-degree"),
		},
		Compile: func(sp Spec, p param.Values, env Env, rng *rand.Rand) (*Schedule, error) {
			if env.G == nil {
				return nil, fmt.Errorf("needs the built input graph to pick victims")
			}
			count := p.Int("count")
			round := p.Int("round")
			if count < 0 || round < 0 {
				return nil, fmt.Errorf("count = %d and round = %d must be >= 0", count, round)
			}
			victims := adversarialVictims(env, count, p.Int("cut") != 0)
			return &Schedule{events: []Event{{Round: round, Down: kills(victims)}}}, nil
		},
	})
}

// randomVictims draws `count` distinct victims from [0, env.N) via a seeded
// permutation, sorted for a stable event encoding.
func randomVictims(count, round int, env Env, rng *rand.Rand) ([]int, error) {
	if count < 0 || round < 0 {
		return nil, fmt.Errorf("count = %d and round = %d must be >= 0", count, round)
	}
	count = min(count, env.N)
	victims := rng.Perm(env.N)[:count]
	sort.Ints(victims)
	return victims, nil
}

func kills(victims []int) []ncc.Outage {
	out := make([]ncc.Outage, len(victims))
	for i, v := range victims {
		out[i] = ncc.Outage{Node: v, Kill: true}
	}
	return out
}

// adversarialVictims ranks nodes by structural damage: articulation points
// first (when preferCut), both groups ordered by descending degree with ids
// breaking ties — a deterministic worst-case adversary, no randomness.
func adversarialVictims(env Env, count int, preferCut bool) []int {
	g := env.G
	byDegree := func(a, b int) bool {
		da, db := g.Degree(a), g.Degree(b)
		if da != db {
			return da > db
		}
		return a < b
	}
	var order []int
	taken := make([]bool, env.N)
	if preferCut {
		cuts := graph.ArticulationPoints(g)
		sort.Slice(cuts, func(i, j int) bool { return byDegree(cuts[i], cuts[j]) })
		for _, u := range cuts {
			order = append(order, u)
			taken[u] = true
		}
	}
	rest := make([]int, 0, env.N)
	for u := 0; u < g.N() && u < env.N; u++ {
		if !taken[u] {
			rest = append(rest, u)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return byDegree(rest[i], rest[j]) })
	order = append(order, rest...)
	count = min(count, len(order))
	victims := append([]int(nil), order[:count]...)
	sort.Ints(victims)
	return victims
}

// poisson draws a Poisson(rate) variate via Knuth's method (fine for the
// small rates churn uses).
func poisson(rng *rand.Rand, rate float64) int {
	if rate <= 0 {
		return 0
	}
	l := math.Exp(-rate)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
