package faultmodel

import (
	"reflect"
	"strings"
	"testing"

	"ncc/internal/graph"
	"ncc/internal/param"
)

func env(n int, seed int64) Env { return Env{N: n, Seed: seed} }

// TestScheduleDeterminism: every registered model compiles to an identical
// schedule when rebuilt with the same seed, and the seeded models move when
// the seed moves. This is the property cluster re-dispatch and cache replay
// rely on.
func TestScheduleDeterminism(t *testing.T) {
	specFor := func(model string) Spec {
		sp := Spec{Model: model}
		if model == "link-cut" {
			sp.To = []int{0, 3}
		}
		return sp
	}
	e := Env{N: 64, Seed: 42, G: graph.KForest(64, 2, 7)}
	for _, name := range Names() {
		sp := specFor(name)
		a, err := Build([]Spec{sp}, e)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := Build([]Spec{sp}, e)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(a.Events(), b.Events()) || a.DropProb != b.DropProb {
			t.Errorf("%s: same seed compiled different schedules", name)
		}
	}
	// Seeded victim selection must depend on the seed.
	for _, name := range []string{"crash", "crash-recover", "churn"} {
		sp := Spec{Model: name, Params: param.Values{"count": 4}}
		if name == "churn" {
			sp.Params = param.Values{"rate": 0.1}
		}
		a, _ := Build([]Spec{sp}, Env{N: 256, Seed: 1, G: e.G})
		b, _ := Build([]Spec{sp}, Env{N: 256, Seed: 2, G: e.G})
		if reflect.DeepEqual(a.Events(), b.Events()) {
			t.Errorf("%s: seeds 1 and 2 compiled the same schedule", name)
		}
	}
}

func TestIIDDropAndLinkCut(t *testing.T) {
	s, err := Build([]Spec{
		{Model: "iid-drop", Params: param.Values{"p": 0.25}},
		{Model: "link-cut", Params: param.Values{"fromround": 10}, To: []int{3}, From: []int{5}},
	}, env(16, 1))
	if err != nil {
		t.Fatal(err)
	}
	if s.DropProb != 0.25 {
		t.Errorf("dropProb = %v, want 0.25", s.DropProb)
	}
	ic := s.Interceptor
	if ic == nil {
		t.Fatal("link-cut compiled no interceptor")
	}
	for _, c := range []struct {
		round, from, to int
		keep            bool
	}{
		{9, 0, 3, true},   // before fromround
		{10, 0, 3, false}, // into the to-set
		{10, 5, 0, false}, // out of the from-set
		{10, 0, 1, true},  // unrelated link
	} {
		if got := ic(c.round, c.from, c.to); got != c.keep {
			t.Errorf("interceptor(%d, %d, %d) = %v, want %v", c.round, c.from, c.to, got, c.keep)
		}
	}
	if len(s.Events()) != 0 {
		t.Errorf("drop models scheduled %d liveness events", len(s.Events()))
	}
}

func TestCrashRecoverSchedule(t *testing.T) {
	s, err := Build([]Spec{{
		Model:  "crash-recover",
		Params: param.Values{"count": 3, "round": 12, "downfor": 20},
	}}, env(32, 9))
	if err != nil {
		t.Fatal(err)
	}
	ev := s.Events()
	if len(ev) != 2 || ev[0].Round != 12 || ev[1].Round != 32 {
		t.Fatalf("events = %+v, want outage@12 and revival@32", ev)
	}
	if len(ev[0].Down) != 3 || len(ev[1].Up) != 3 {
		t.Fatalf("events = %+v, want 3 outages and 3 revivals", ev)
	}
	for i, o := range ev[0].Down {
		if o.Kill {
			t.Errorf("crash-recover outage %d is a kill", i)
		}
		if o.Node != ev[1].Up[i].Node {
			t.Errorf("outage %d node %d does not match revival node %d", i, o.Node, ev[1].Up[i].Node)
		}
		if !ev[1].Up[i].Reset {
			t.Errorf("revival %d did not request a reset (default reset=1)", i)
		}
	}
	down, up := s.Transitions(12)
	if len(down) != 3 || len(up) != 0 {
		t.Errorf("Transitions(12) = %v, %v", down, up)
	}
	if down, up = s.Transitions(13); down != nil || up != nil {
		t.Errorf("Transitions(13) = %v, %v, want none", down, up)
	}
}

func TestChurnConsistency(t *testing.T) {
	s, err := Build([]Spec{{
		Model:  "churn",
		Params: param.Values{"rate": 0.5, "horizon": 400, "meandown": 16},
	}}, env(64, 77))
	if err != nil {
		t.Fatal(err)
	}
	ev := s.Events()
	if len(ev) == 0 {
		t.Fatal("rate 0.5 over 400 rounds churned nobody")
	}
	// Replay: a node must never be downed while already down, every outage
	// must have a later revival, and rounds must be sorted and coalesced.
	down := map[int]bool{}
	pending := 0
	last := -1
	for _, e := range ev {
		if e.Round <= last {
			t.Fatalf("events not strictly sorted/coalesced at round %d", e.Round)
		}
		last = e.Round
		for _, r := range e.Up {
			if !down[r.Node] {
				t.Fatalf("round %d revives node %d which is not down", e.Round, r.Node)
			}
			down[r.Node] = false
			pending--
		}
		for _, o := range e.Down {
			if o.Kill {
				t.Fatalf("churn killed node %d; churn only suspends", o.Node)
			}
			if down[o.Node] {
				t.Fatalf("round %d downs node %d twice", e.Round, o.Node)
			}
			down[o.Node] = true
			pending++
		}
	}
	if pending < 0 {
		t.Fatalf("more revivals than outages")
	}
}

func TestAdversarialPicksCutVertices(t *testing.T) {
	// Star: the hub is the articulation point and the max-degree node.
	s, err := Build([]Spec{{Model: "adversarial", Params: param.Values{"count": 1, "round": 4}}},
		Env{N: 8, Seed: 5, G: graph.Star(8)})
	if err != nil {
		t.Fatal(err)
	}
	ev := s.Events()
	if len(ev) != 1 || len(ev[0].Down) != 1 || ev[0].Down[0].Node != 0 || !ev[0].Down[0].Kill {
		t.Fatalf("events = %+v, want kill of hub 0 at round 4", ev)
	}
	// Without a graph the model must refuse.
	if _, err := Build([]Spec{{Model: "adversarial"}}, env(8, 5)); err == nil {
		t.Error("adversarial compiled without a graph")
	}
}

func TestBuildValidation(t *testing.T) {
	cases := []struct {
		spec Spec
		want string
	}{
		{Spec{Model: "nope"}, "unknown fault model"},
		{Spec{Model: "iid-drop", Params: param.Values{"p": 1.5}}, "out of [0,1]"},
		{Spec{Model: "iid-drop", Params: param.Values{"q": 1}}, "unknown params"},
		{Spec{Model: "iid-drop", To: []int{1}}, "takes no to/from"},
		{Spec{Model: "link-cut", To: []int{16}}, "out of [0,16)"},
		{Spec{Model: "link-cut", From: []int{-1}}, "out of [0,16)"},
		{Spec{Model: "link-cut"}, "non-empty"},
		{Spec{Model: "link-cut", To: []int{0}, Params: param.Values{"fromround": -1}}, "need >= 0"},
		{Spec{Model: "crash-recover", Params: param.Values{"downfor": 0}}, "must be >= 1"},
	}
	for _, c := range cases {
		_, err := Build([]Spec{c.spec}, env(16, 1))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Build(%+v) error = %v, want substring %q", c.spec, err, c.want)
		}
	}
	// Empty spec list: no plan at all.
	if s, err := Build(nil, env(16, 1)); err != nil || s != nil {
		t.Errorf("Build(nil) = %v, %v, want nil, nil", s, err)
	}
}
