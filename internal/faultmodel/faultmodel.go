// Package faultmodel is the fault-model registry: it compiles declarative
// fault specifications (model name + parameter bag, as written in scenario
// JSON) into deterministic, seeded Schedules the ncc engine executes. A
// Schedule bundles the three fault surfaces the engine exposes — an i.i.d.
// message-drop probability, a link interceptor, and a node-liveness FaultPlan
// — so one scenario block can combine stochastic loss, targeted link cuts,
// and node crash/churn schedules.
//
// Every random decision a model makes is drawn from a PCG seeded by the run
// seed, the model name, and the spec's position, never from global state:
// rebuilding the same specs for the same Env yields a byte-identical
// Schedule, which is what keeps cluster re-dispatch and result-cache replay
// bit-for-bit reproducible under faults.
package faultmodel

import (
	"fmt"
	"math/rand/v2"
	"slices"
	"sort"
	"strings"

	"ncc/internal/graph"
	"ncc/internal/ncc"
	"ncc/internal/param"
)

// Spec is one declarative fault block as it appears in a scenario file:
// a registered model name, its parameter bag, and — for link-oriented models
// only — explicit To/From node sets.
type Spec struct {
	Model  string       `json:"model"`
	Params param.Values `json:"params,omitempty"`
	To     []int        `json:"to,omitempty"`
	From   []int        `json:"from,omitempty"`
}

// Env is what a model may consult when compiling: the built input graph
// (nil when compiling before graph construction — models that need it must
// error), the clique size, and the run seed all randomness derives from.
type Env struct {
	G    *graph.Graph
	N    int
	Seed int64
}

// Model describes one registered fault model.
type Model struct {
	Name string
	Desc string
	// Params declares the accepted parameters (defaults applied by Build).
	Params []param.Def
	// Links marks models that consume the Spec's To/From node sets; Build
	// rejects link sets handed to models that do not.
	Links bool
	// Compile turns a resolved spec into a Schedule. rng is pre-seeded
	// deterministically from (Env.Seed, model name, spec index); models must
	// draw all randomness from it.
	Compile func(spec Spec, p param.Values, env Env, rng *rand.Rand) (*Schedule, error)
}

// Event is one scheduled node-liveness transition batch.
type Event struct {
	Round int
	Down  []ncc.Outage
	Up    []ncc.Revival
}

// Schedule is a compiled, merged fault schedule. It implements ncc.FaultPlan;
// DropProb and Interceptor are handed to the matching ncc.Config fields by
// the caller. The zero Schedule is a valid "no faults" plan (attaching it
// still switches the engine to failure-isolation mode).
type Schedule struct {
	DropProb    float64
	Interceptor ncc.Interceptor
	events      []Event // sorted by Round, one entry per distinct round
}

// Transitions implements ncc.FaultPlan by binary search over the sorted
// event list. It is a pure function of the schedule and the round.
func (s *Schedule) Transitions(round int) ([]ncc.Outage, []ncc.Revival) {
	i, ok := slices.BinarySearchFunc(s.events, round, func(e Event, r int) int { return e.Round - r })
	if !ok {
		return nil, nil
	}
	return s.events[i].Down, s.events[i].Up
}

// Events returns the schedule's liveness transitions, sorted by round. The
// slice is shared; callers must not mutate it.
func (s *Schedule) Events() []Event { return s.events }

// normalize sorts events by round and coalesces same-round entries, keeping
// append order within a round (outage-before-revival ordering inside one
// round is the engine's concern, not the schedule's).
func (s *Schedule) normalize() {
	sort.SliceStable(s.events, func(i, j int) bool { return s.events[i].Round < s.events[j].Round })
	out := s.events[:0]
	for _, e := range s.events {
		if n := len(out); n > 0 && out[n-1].Round == e.Round {
			out[n-1].Down = append(out[n-1].Down, e.Down...)
			out[n-1].Up = append(out[n-1].Up, e.Up...)
			continue
		}
		out = append(out, e)
	}
	s.events = out
}

// merge folds b into a: drop probabilities compose as independent losses,
// interceptors conjoin (a message survives only if every interceptor keeps
// it), and event lists concatenate then normalize.
func merge(a, b *Schedule) *Schedule {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	a.DropProb = 1 - (1-a.DropProb)*(1-b.DropProb)
	a.Interceptor = chainInterceptors(a.Interceptor, b.Interceptor)
	a.events = append(a.events, b.events...)
	a.normalize()
	return a
}

func chainInterceptors(a, b ncc.Interceptor) ncc.Interceptor {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func(round int, from, to ncc.NodeID) bool {
		return a(round, from, to) && b(round, from, to)
	}
}

var registry = map[string]Model{}

// Register adds a fault model to the registry; duplicate or incomplete
// registrations are programming errors.
func Register(m Model) {
	if m.Name == "" || m.Compile == nil {
		panic("faultmodel: Register needs a name and a compile function")
	}
	if _, dup := registry[m.Name]; dup {
		panic(fmt.Sprintf("faultmodel: model %q registered twice", m.Name))
	}
	registry[m.Name] = m
}

// Get looks up a registered fault model.
func Get(name string) (Model, bool) {
	m, ok := registry[name]
	return m, ok
}

// Names lists registered models in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns every registered model, ordered by name.
func All() []Model {
	out := make([]Model, 0, len(registry))
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}

// ErrUnknown formats the canonical unknown-model error.
func ErrUnknown(name string) error {
	return fmt.Errorf("unknown fault model %q (have %s)", name, strings.Join(Names(), ", "))
}

// Validate statically checks one spec against the registry without compiling:
// the model exists, its parameter bag resolves, link sets are only given to
// link models, and — when n > 0 — link-set ids are in [0, n). Errors name the
// offending field relative to the spec.
func Validate(sp Spec, n int) error {
	m, ok := Get(sp.Model)
	if !ok {
		return fmt.Errorf("model: %w", ErrUnknown(sp.Model))
	}
	if _, err := param.Resolve(sp.Params, m.Params); err != nil {
		return fmt.Errorf("params: %w", err)
	}
	if !m.Links && (len(sp.To) > 0 || len(sp.From) > 0) {
		return fmt.Errorf("model %s takes no to/from link sets", m.Name)
	}
	for i, v := range sp.To {
		if v < 0 || (n > 0 && v >= n) {
			return fmt.Errorf("to[%d] = %d out of [0,%d)", i, v, n)
		}
	}
	for i, v := range sp.From {
		if v < 0 || (n > 0 && v >= n) {
			return fmt.Errorf("from[%d] = %d out of [0,%d)", i, v, n)
		}
	}
	return nil
}

// Build compiles and merges a spec list into one Schedule. An empty list
// yields nil (no fault plan at all); a non-empty list always yields a
// non-nil Schedule, even if it schedules nothing — attaching it switches the
// engine to failure-isolation mode, which is wanted whenever faults are
// declared. Each spec's rng is seeded from (env.Seed, model name, index), so
// the same specs against the same Env compile to an identical Schedule.
func Build(specs []Spec, env Env) (*Schedule, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	var out *Schedule
	for i, sp := range specs {
		m, ok := Get(sp.Model)
		if !ok {
			return nil, ErrUnknown(sp.Model)
		}
		if err := Validate(sp, env.N); err != nil {
			return nil, fmt.Errorf("fault model %s: %w", sp.Model, err)
		}
		vals, err := param.Resolve(sp.Params, m.Params)
		if err != nil {
			return nil, fmt.Errorf("fault model %s: %w", sp.Model, err)
		}
		rng := specRand(env.Seed, sp.Model, i)
		s, err := m.Compile(sp, vals, env, rng)
		if err != nil {
			return nil, fmt.Errorf("fault model %s: %w", sp.Model, err)
		}
		out = merge(out, s)
	}
	if out == nil {
		out = &Schedule{}
	}
	return out, nil
}

// specRand derives the deterministic random source for spec number idx of a
// build: an FNV-style fold of the model name into the run seed, with the
// index in the second PCG word so repeated models stay independent.
func specRand(seed int64, model string, idx int) *rand.Rand {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(model); i++ {
		h = (h ^ uint64(model[i])) * 0x100000001b3
	}
	return rand.New(rand.NewPCG(uint64(seed)^h, uint64(idx)*0x9e3779b97f4a7c15+0x6a09e667f3bcc909))
}
