package seq

import (
	"testing"
	"testing/quick"

	"ncc/internal/graph"
)

func TestDSU(t *testing.T) {
	d := NewDSU(6)
	if !d.Union(0, 1) || !d.Union(2, 3) {
		t.Fatal("fresh unions failed")
	}
	if d.Union(1, 0) {
		t.Fatal("repeated union succeeded")
	}
	if d.Find(0) != d.Find(1) || d.Find(0) == d.Find(2) {
		t.Fatal("find inconsistent")
	}
	d.Union(1, 3)
	if d.Find(0) != d.Find(2) {
		t.Fatal("transitive union broken")
	}
}

func TestKruskalOnKnownGraph(t *testing.T) {
	// Square with diagonal: 0-1 (1), 1-2 (2), 2-3 (3), 3-0 (4), 0-2 (5).
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	b.AddEdge(0, 2)
	wg := graph.NewWeighted(b.Build())
	wg.SetWeight(0, 1, 1)
	wg.SetWeight(1, 2, 2)
	wg.SetWeight(2, 3, 3)
	wg.SetWeight(3, 0, 4)
	wg.SetWeight(0, 2, 5)
	edges, total := MSTKruskal(wg)
	if total != 6 || len(edges) != 3 {
		t.Errorf("MST weight %d (%d edges), want 6 (3 edges)", total, len(edges))
	}
}

func TestKruskalSpansForest(t *testing.T) {
	check := func(seed int64, n8 uint8) bool {
		n := 4 + int(n8)%30
		g := graph.GNP(n, 0.3, seed)
		wg := graph.RandomWeights(g, 50, seed+1)
		edges, _ := MSTKruskal(wg)
		_, nc := graph.Components(g)
		return len(edges) == n-nc
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGreedyMISValid(t *testing.T) {
	check := func(seed int64, n8 uint8) bool {
		n := 3 + int(n8)%40
		g := graph.GNP(n, 0.25, seed)
		in := GreedyMIS(g)
		for u := 0; u < n; u++ {
			cov := in[u]
			for _, v := range g.Neighbors(u) {
				if in[u] && in[v] {
					return false
				}
				if in[v] {
					cov = true
				}
			}
			if !cov {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGreedyMatchingValid(t *testing.T) {
	check := func(seed int64, n8 uint8) bool {
		n := 3 + int(n8)%40
		g := graph.GNP(n, 0.25, seed)
		mate := GreedyMatching(g)
		for u := 0; u < n; u++ {
			if mate[u] != -1 && mate[mate[u]] != u {
				return false
			}
		}
		bad := false
		g.Edges(func(u, v int) {
			if mate[u] == -1 && mate[v] == -1 {
				bad = true
			}
		})
		return !bad
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGreedyColoringBound(t *testing.T) {
	for _, tc := range []struct {
		g *graph.Graph
	}{
		{graph.Path(20)},
		{graph.Cycle(21)},
		{graph.Complete(7)},
		{graph.Grid(5, 6)},
		{graph.KForest(60, 3, 4)},
	} {
		colors, used := GreedyColoring(tc.g)
		d, _ := graph.Degeneracy(tc.g)
		if used > d+1 {
			t.Errorf("%v: %d colors exceed degeneracy+1 = %d", tc.g, used, d+1)
		}
		for u := 0; u < tc.g.N(); u++ {
			for _, v := range tc.g.Neighbors(u) {
				if colors[u] == colors[v] {
					t.Fatalf("%v: conflict on edge (%d,%d)", tc.g, u, v)
				}
			}
		}
	}
}
