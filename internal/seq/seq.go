// Package seq provides sequential reference algorithms used to verify the
// distributed algorithms' outputs and as quality baselines in the
// experiments: Kruskal's MST (with the same weight-then-edge-key tie
// breaking as the distributed FindMin), greedy MIS, greedy maximal matching,
// and degeneracy-order greedy coloring.
package seq

import (
	"sort"

	"ncc/internal/graph"
)

// DSU is a union-find structure with path compression and union by size.
type DSU struct {
	parent []int
	size   []int
}

// NewDSU creates n singletons.
func NewDSU(n int) *DSU {
	d := &DSU{parent: make([]int, n), size: make([]int, n)}
	for i := range d.parent {
		d.parent[i] = i
		d.size[i] = 1
	}
	return d
}

// Find returns the representative of x.
func (d *DSU) Find(x int) int {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]]
		x = d.parent[x]
	}
	return x
}

// Union merges the sets of a and b; returns false if already joined.
func (d *DSU) Union(a, b int) bool {
	ra, rb := d.Find(a), d.Find(b)
	if ra == rb {
		return false
	}
	if d.size[ra] < d.size[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	d.size[ra] += d.size[rb]
	return true
}

// Edge is a weighted undirected edge.
type Edge struct {
	U, V int
	W    int64
}

// SortKey is the total order the MST algorithms use: weight first, then the
// canonical undirected edge key — this makes all weights distinct, which
// Boruvka-style merging requires, and makes the minimum spanning forest
// unique. Supports n <= 2^20 nodes and weights up to 2^24-1 (the key must fit
// one Theta(log n)-bit word).
func SortKey(u, v int, w int64, n int) uint64 {
	if n > 1<<20 {
		panic("seq: SortKey supports at most 2^20 nodes")
	}
	if w < 0 || w >= 1<<24 {
		panic("seq: SortKey supports weights in [0, 2^24)")
	}
	if u > v {
		u, v = v, u
	}
	return uint64(w)<<40 | uint64(u)<<20 | uint64(v)
}

// UnpackSortKey inverts SortKey.
func UnpackSortKey(k uint64) (u, v int, w int64) {
	return int(k >> 20 & 0xfffff), int(k & 0xfffff), int64(k >> 40)
}

// MSTKruskal returns the edges of the minimum spanning forest of wg under
// the SortKey order, plus the total weight.
func MSTKruskal(wg *graph.Weighted) ([]Edge, int64) {
	var edges []Edge
	wg.Edges(func(u, v int) {
		edges = append(edges, Edge{U: u, V: v, W: wg.Weight(u, v)})
	})
	n := wg.N()
	sort.Slice(edges, func(i, j int) bool {
		return SortKey(edges[i].U, edges[i].V, edges[i].W, n) < SortKey(edges[j].U, edges[j].V, edges[j].W, n)
	})
	dsu := NewDSU(n)
	var out []Edge
	var total int64
	for _, e := range edges {
		if dsu.Union(e.U, e.V) {
			out = append(out, e)
			total += e.W
		}
	}
	return out, total
}

// GreedyMIS returns a maximal independent set (in id order).
func GreedyMIS(g *graph.Graph) []bool {
	in := make([]bool, g.N())
	blocked := make([]bool, g.N())
	for u := 0; u < g.N(); u++ {
		if blocked[u] {
			continue
		}
		in[u] = true
		for _, v := range g.Neighbors(u) {
			blocked[v] = true
		}
	}
	return in
}

// GreedyMatching returns a maximal matching as a partner array (-1 if
// unmatched), matching edges greedily in id order.
func GreedyMatching(g *graph.Graph) []int {
	mate := make([]int, g.N())
	for i := range mate {
		mate[i] = -1
	}
	g.Edges(func(u, v int) {
		if mate[u] == -1 && mate[v] == -1 {
			mate[u], mate[v] = v, u
		}
	})
	return mate
}

// GreedyColoring colors in reverse degeneracy order with the smallest free
// color, using at most degeneracy+1 colors. Returns the colors and the
// number of colors used.
func GreedyColoring(g *graph.Graph) ([]int, int) {
	_, order := graph.Degeneracy(g)
	colors := make([]int, g.N())
	for i := range colors {
		colors[i] = -1
	}
	maxC := 0
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		used := map[int]bool{}
		for _, v := range g.Neighbors(u) {
			if colors[v] >= 0 {
				used[colors[v]] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[u] = c
		if c+1 > maxC {
			maxC = c + 1
		}
	}
	return colors, maxC
}
