package verify

import (
	"strings"
	"testing"

	"ncc/internal/graph"
	"ncc/internal/seq"
)

func TestSpanningForestAcceptsAndRejects(t *testing.T) {
	g := graph.Cycle(5)
	good := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}
	if err := SpanningForest(g, good); err != nil {
		t.Errorf("valid forest rejected: %v", err)
	}
	cycle := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}
	if err := SpanningForest(g, cycle); err == nil {
		t.Error("cycle accepted")
	}
	short := [][2]int{{0, 1}, {1, 2}}
	if err := SpanningForest(g, short); err == nil {
		t.Error("non-spanning forest accepted")
	}
	nonEdge := [][2]int{{0, 2}, {1, 2}, {2, 3}, {3, 4}}
	if err := SpanningForest(g, nonEdge); err == nil {
		t.Error("non-edge accepted")
	}
}

func TestMSTRejectsSuboptimal(t *testing.T) {
	// Triangle with one heavy edge.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	wg := graph.NewWeighted(b.Build())
	wg.SetWeight(0, 1, 1)
	wg.SetWeight(1, 2, 1)
	wg.SetWeight(0, 2, 10)
	if err := MST(wg, [][2]int{{0, 1}, {1, 2}}); err != nil {
		t.Errorf("optimal tree rejected: %v", err)
	}
	if err := MST(wg, [][2]int{{0, 1}, {0, 2}}); err == nil {
		t.Error("suboptimal tree accepted")
	}
}

func TestBFSVerifier(t *testing.T) {
	g := graph.Path(4)
	dist, parent := graph.BFSDistances(g, 0)
	if err := BFS(g, 0, dist, parent, true); err != nil {
		t.Errorf("valid BFS rejected: %v", err)
	}
	bad := append([]int(nil), dist...)
	bad[3] = 7
	if err := BFS(g, 0, bad, parent, true); err == nil {
		t.Error("wrong distance accepted")
	}
	badP := append([]int(nil), parent...)
	badP[3] = 1 // not a neighbor one step closer
	if err := BFS(g, 0, dist, badP, false); err == nil {
		t.Error("invalid parent accepted")
	}
}

func TestMISVerifier(t *testing.T) {
	g := graph.Path(4)
	if err := MIS(g, []bool{true, false, true, false}); err != nil {
		t.Errorf("valid MIS rejected: %v", err)
	}
	if err := MIS(g, []bool{true, true, false, true}); err == nil {
		t.Error("dependent set accepted")
	}
	if err := MIS(g, []bool{true, false, false, false}); err == nil {
		t.Error("non-maximal set accepted")
	}
}

func TestMatchingVerifier(t *testing.T) {
	g := graph.Path(4)
	if err := Matching(g, []int{1, 0, 3, 2}); err != nil {
		t.Errorf("valid matching rejected: %v", err)
	}
	if err := Matching(g, []int{1, 0, -1, -1}); err == nil {
		t.Error("non-maximal matching accepted (edge 2-3 open)")
	}
	if err := Matching(g, []int{2, -1, 0, -1}); err == nil {
		t.Error("matching over non-edge accepted")
	}
	if err := Matching(g, []int{1, 2, 1, -1}); err == nil {
		t.Error("asymmetric matching accepted")
	}
}

func TestColoringVerifier(t *testing.T) {
	g := graph.Cycle(4)
	if err := Coloring(g, []int{0, 1, 0, 1}, 2); err != nil {
		t.Errorf("valid coloring rejected: %v", err)
	}
	if err := Coloring(g, []int{0, 0, 1, 1}, 2); err == nil {
		t.Error("conflicting coloring accepted")
	}
	if err := Coloring(g, []int{0, 1, 0, 5}, 2); err == nil {
		t.Error("out-of-palette color accepted")
	}
	if err := Coloring(g, []int{0, 1, 0, -1}, 2); err == nil {
		t.Error("uncolored node accepted")
	}
	if ColorsUsed([]int{0, 1, 0, 1}) != 2 {
		t.Error("ColorsUsed wrong")
	}
}

func TestOrientationVerifier(t *testing.T) {
	g := graph.Path(3)
	if err := Orientation(g, [][]int{{1}, {2}, {}}, 1); err != nil {
		t.Errorf("valid orientation rejected: %v", err)
	}
	if err := Orientation(g, [][]int{{1}, {0, 2}, {}}, 0); err == nil {
		t.Error("doubly-oriented edge accepted")
	}
	if err := Orientation(g, [][]int{{1}, {}, {}}, 0); err == nil {
		t.Error("unoriented edge accepted")
	}
	if err := Orientation(g, [][]int{{1}, {2}, {}}, 0); err != nil {
		t.Errorf("bound=0 should skip outdegree check: %v", err)
	}
	if err := Orientation(g, [][]int{{1, 2}, {}, {}}, 1); err == nil {
		t.Error("non-edge orientation accepted")
	}
	if MaxOutdegree([][]int{{1}, {2, 0}, {}}) != 2 {
		t.Error("MaxOutdegree wrong")
	}
}

func TestVerifierErrorsAreDescriptive(t *testing.T) {
	g := graph.Path(4)
	err := MIS(g, []bool{true, true, false, true})
	if err == nil || !strings.Contains(err.Error(), "adjacent") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestMSTAgainstKruskalRandom(t *testing.T) {
	g := graph.GNP(20, 0.3, 5)
	wg := graph.RandomWeights(g, 100, 6)
	edges, _ := seq.MSTKruskal(wg)
	var pairs [][2]int
	for _, e := range edges {
		pairs = append(pairs, [2]int{e.U, e.V})
	}
	if err := MST(wg, pairs); err != nil {
		t.Errorf("Kruskal's own output rejected: %v", err)
	}
}
