package verify

import (
	"fmt"

	"ncc/internal/graph"
)

// Survivor verifiers: the consistency checks a degraded run must still pass
// on the nodes that survived fault injection. alive[u] marks nodes that
// finished and ended in service; outputs of dead nodes are engine zero values
// and are never consulted. Global properties that can legitimately be lost
// with the dead nodes (spanning, maximality against a dead neighbor,
// minimality) are weakened to their sound survivor-local forms: the checks
// below reject outputs that are *wrong*, never outputs that are merely
// *incomplete*.

// SurvivorMIS checks that the alive nodes' membership bits form an
// independent set. Maximality is not asserted: the fault-repair pass resolves
// membership conflicts by demotion, so an alive node may legitimately end
// undominated when its dominator died or was demoted — incompleteness, not
// wrongness.
func SurvivorMIS(g *graph.Graph, in []bool, alive []bool) error {
	for u := 0; u < g.N(); u++ {
		if !alive[u] || !in[u] {
			continue
		}
		for _, v32 := range g.Neighbors(u) {
			if v := int(v32); alive[v] && in[v] {
				return fmt.Errorf("alive nodes %d and %d are adjacent and both in the set", u, v)
			}
		}
	}
	return nil
}

// SurvivorMatching checks that alive nodes' partner claims are real edges and
// reciprocated whenever the partner is alive too (a claim on a dead partner
// is accepted: the handshake completed before the partner died).
func SurvivorMatching(g *graph.Graph, mate []int, alive []bool) error {
	for u := 0; u < g.N(); u++ {
		if !alive[u] || mate[u] == -1 {
			continue
		}
		m := mate[u]
		if m < 0 || m >= g.N() || !g.HasEdge(u, m) {
			return fmt.Errorf("alive node %d claims partner %d which is not a neighbor", u, m)
		}
		if alive[m] && mate[m] != u {
			return fmt.Errorf("alive pair (%d,%d): partner claims %d instead", u, m, mate[m])
		}
	}
	return nil
}

// SurvivorColoring checks properness over edges with both endpoints alive
// and that alive nodes hold non-negative colors.
func SurvivorColoring(g *graph.Graph, colors []int, alive []bool) error {
	for u := 0; u < g.N(); u++ {
		if !alive[u] {
			continue
		}
		if colors[u] < 0 {
			return fmt.Errorf("alive node %d has no color", u)
		}
		for _, v32 := range g.Neighbors(u) {
			if v := int(v32); alive[v] && colors[u] == colors[v] {
				return fmt.Errorf("alive nodes %d and %d share color %d", u, v, colors[u])
			}
		}
	}
	return nil
}

// SurvivorBFS checks soundness of the alive nodes' distance claims: a claimed
// distance is never below the true full-graph distance (claims certify the
// existence of a path; message loss can only delay or lose announcements,
// never shorten paths), the source reports zero when alive, and parents are
// in range. Exactness is not required — a survivor may hold a stale
// overestimate or be unreached.
func SurvivorBFS(g *graph.Graph, src int, dist, parent []int, alive []bool) error {
	trueDist, _ := graph.BFSDistances(g, src)
	for u := 0; u < g.N(); u++ {
		if !alive[u] {
			continue
		}
		if p := parent[u]; p < -1 || p >= g.N() {
			return fmt.Errorf("alive node %d has parent %d out of range", u, p)
		}
		d := dist[u]
		if d < -1 {
			return fmt.Errorf("alive node %d has distance %d", u, d)
		}
		if d >= 0 && (trueDist[u] == -1 || d < trueDist[u]) {
			return fmt.Errorf("alive node %d claims distance %d below the true distance %d", u, d, trueDist[u])
		}
	}
	if alive[src] && dist[src] != 0 {
		return fmt.Errorf("alive source %d reports distance %d", src, dist[src])
	}
	return nil
}

// SurvivorForest checks that the union of the alive nodes' edge shares
// consists of real graph edges and is acyclic — a valid sub-forest of some
// spanning forest. Spanning and weight-minimality die with the dead nodes
// and are not asserted.
func SurvivorForest(g *graph.Graph, shares [][][2]int, alive []bool) error {
	uf := make([]int, g.N())
	for i := range uf {
		uf[i] = i
	}
	var find func(x int) int
	find = func(x int) int {
		for uf[x] != x {
			uf[x] = uf[uf[x]]
			x = uf[x]
		}
		return x
	}
	seen := map[[2]int]bool{}
	for u, edges := range shares {
		if !alive[u] {
			continue
		}
		for _, e := range edges {
			a, b := e[0], e[1]
			if a > b {
				a, b = b, a
			}
			if seen[[2]int{a, b}] {
				continue // the same edge may be reported by both endpoints
			}
			seen[[2]int{a, b}] = true
			if a < 0 || b >= g.N() || !g.HasEdge(a, b) {
				return fmt.Errorf("alive node %d reports non-edge (%d,%d)", u, e[0], e[1])
			}
			ra, rb := find(a), find(b)
			if ra == rb {
				return fmt.Errorf("alive nodes' forest edges close a cycle at (%d,%d)", e[0], e[1])
			}
			uf[ra] = rb
		}
	}
	return nil
}
