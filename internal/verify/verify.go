// Package verify checks the outputs of the distributed algorithms against
// their specifications (and, where the answer is unique, against sequential
// reference results): spanning forests and MST weight, BFS trees, maximal
// independent sets, maximal matchings, colorings, and bounded-outdegree
// orientations.
package verify

import (
	"fmt"

	"ncc/internal/graph"
	"ncc/internal/hashing"
	"ncc/internal/seq"
)

// SpanningForest checks that the given edge set is a spanning forest of g:
// every edge exists, no cycles, and the number of edges is n minus the number
// of components (so it spans every component).
func SpanningForest(g *graph.Graph, edges [][2]int) error {
	dsu := seq.NewDSU(g.N())
	for _, e := range edges {
		if !g.HasEdge(e[0], e[1]) {
			return fmt.Errorf("edge (%d,%d) not in graph", e[0], e[1])
		}
		if !dsu.Union(e[0], e[1]) {
			return fmt.Errorf("edge (%d,%d) closes a cycle", e[0], e[1])
		}
	}
	_, nc := graph.Components(g)
	if want := g.N() - nc; len(edges) != want {
		return fmt.Errorf("forest has %d edges, want %d (n=%d, components=%d)", len(edges), want, g.N(), nc)
	}
	return nil
}

// MST checks that edges form a spanning forest whose total weight equals
// Kruskal's (the forest is unique under the weight-plus-edge-key order, so
// weight equality means the exact same forest).
func MST(wg *graph.Weighted, edges [][2]int) error {
	if err := SpanningForest(wg.Graph, edges); err != nil {
		return err
	}
	var total int64
	for _, e := range edges {
		total += wg.Weight(e[0], e[1])
	}
	_, want := seq.MSTKruskal(wg)
	if total != want {
		return fmt.Errorf("forest weight %d, Kruskal weight %d", total, want)
	}
	return nil
}

// BFS checks distances and parents against a sequential BFS from src.
// Unreached nodes must report dist -1. Parents must be neighbors one step
// closer to src (any such parent is accepted; the minimum-id tie-break is
// checked only when strict is set).
func BFS(g *graph.Graph, src int, dist, parent []int, strict bool) error {
	wantDist, wantParent := graph.BFSDistances(g, src)
	for u := 0; u < g.N(); u++ {
		if dist[u] != wantDist[u] {
			return fmt.Errorf("node %d: dist %d, want %d", u, dist[u], wantDist[u])
		}
		if u == src || wantDist[u] == -1 {
			continue
		}
		p := parent[u]
		if p < 0 || p >= g.N() || !g.HasEdge(u, p) {
			return fmt.Errorf("node %d: parent %d is not a neighbor", u, p)
		}
		if dist[p] != dist[u]-1 {
			return fmt.Errorf("node %d: parent %d at distance %d, want %d", u, p, dist[p], dist[u]-1)
		}
		if strict && p != wantParent[u] {
			return fmt.Errorf("node %d: parent %d, want minimum-id parent %d", u, p, wantParent[u])
		}
	}
	return nil
}

// MIS checks independence and maximality.
func MIS(g *graph.Graph, in []bool) error {
	for u := 0; u < g.N(); u++ {
		covered := in[u]
		for _, v := range g.Neighbors(u) {
			if in[u] && in[int(v)] {
				return fmt.Errorf("adjacent nodes %d and %d both in set", u, v)
			}
			if in[int(v)] {
				covered = true
			}
		}
		if !covered {
			return fmt.Errorf("node %d neither in set nor adjacent to it (not maximal)", u)
		}
	}
	return nil
}

// Matching checks that mate is a consistent maximal matching: symmetric
// partners over real edges, and no edge with both endpoints unmatched.
func Matching(g *graph.Graph, mate []int) error {
	for u := 0; u < g.N(); u++ {
		m := mate[u]
		if m == -1 {
			continue
		}
		if m < 0 || m >= g.N() || mate[m] != u {
			return fmt.Errorf("node %d claims partner %d but is not reciprocated", u, m)
		}
		if !g.HasEdge(u, m) {
			return fmt.Errorf("matched pair (%d,%d) is not an edge", u, m)
		}
	}
	ok := true
	var bu, bv int
	g.Edges(func(u, v int) {
		if mate[u] == -1 && mate[v] == -1 {
			ok = false
			bu, bv = u, v
		}
	})
	if !ok {
		return fmt.Errorf("edge (%d,%d) has both endpoints unmatched (not maximal)", bu, bv)
	}
	return nil
}

// Coloring checks properness and that at most maxColors colors are used
// (pass 0 to skip the bound).
func Coloring(g *graph.Graph, colors []int, maxColors int) error {
	for u := 0; u < g.N(); u++ {
		if colors[u] < 0 {
			return fmt.Errorf("node %d uncolored", u)
		}
		if maxColors > 0 && colors[u] >= maxColors {
			return fmt.Errorf("node %d uses color %d, bound is %d", u, colors[u], maxColors)
		}
		for _, v := range g.Neighbors(u) {
			if colors[u] == colors[int(v)] {
				return fmt.Errorf("adjacent nodes %d and %d share color %d", u, v, colors[u])
			}
		}
	}
	return nil
}

// ColorsUsed counts distinct colors.
func ColorsUsed(colors []int) int {
	seen := map[int]bool{}
	for _, c := range colors {
		seen[c] = true
	}
	return len(seen)
}

// Orientation checks that the per-node out-neighbor lists cover every edge
// exactly once (in exactly one direction) and that every outdegree is at
// most bound (pass 0 to skip the bound).
func Orientation(g *graph.Graph, out [][]int, bound int) error {
	seen := make(map[uint64]int)
	for u := 0; u < g.N(); u++ {
		if bound > 0 && len(out[u]) > bound {
			return fmt.Errorf("node %d has outdegree %d, bound %d", u, len(out[u]), bound)
		}
		for _, v := range out[u] {
			if !g.HasEdge(u, v) {
				return fmt.Errorf("oriented non-edge (%d,%d)", u, v)
			}
			seen[hashing.PackUndirected(u, v)]++
		}
	}
	if len(seen) != g.M() {
		return fmt.Errorf("%d edges oriented, graph has %d", len(seen), g.M())
	}
	for k, c := range seen {
		if c != 1 {
			u, v := hashing.UnpackEdge(k)
			return fmt.Errorf("edge (%d,%d) oriented %d times", u, v, c)
		}
	}
	return nil
}

// MaxOutdegree returns the largest outdegree in an orientation.
func MaxOutdegree(out [][]int) int {
	d := 0
	for _, o := range out {
		if len(o) > d {
			d = len(o)
		}
	}
	return d
}

// ForestPartition checks that the given edge groups partition all edges of g
// and that every group is acyclic (a forest) — the Nash-Williams
// decomposition property of Section 2.1.
func ForestPartition(g *graph.Graph, forests [][][2]int) error {
	total := 0
	seen := make(map[uint64]bool)
	for f, edges := range forests {
		dsu := seq.NewDSU(g.N())
		for _, e := range edges {
			if !g.HasEdge(e[0], e[1]) {
				return fmt.Errorf("forest %d contains non-edge (%d,%d)", f, e[0], e[1])
			}
			key := hashing.PackUndirected(e[0], e[1])
			if seen[key] {
				return fmt.Errorf("edge (%d,%d) appears in two forests", e[0], e[1])
			}
			seen[key] = true
			if !dsu.Union(e[0], e[1]) {
				return fmt.Errorf("forest %d contains a cycle through (%d,%d)", f, e[0], e[1])
			}
			total++
		}
	}
	if total != g.M() {
		return fmt.Errorf("forests cover %d edges, graph has %d", total, g.M())
	}
	return nil
}
