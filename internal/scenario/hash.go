package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"slices"

	"ncc/internal/algo"
	"ncc/internal/faultmodel"
	"ncc/internal/graph"
	"ncc/internal/ncc"
	"ncc/internal/param"
)

// Canonical returns the semantic normal form of a scenario: two scenarios
// that specify the same computation — regardless of JSON key order, of
// spelling a default value versus omitting it, or of the order sweep axes
// list their values — canonicalize to the same value, and any semantic
// difference survives. Concretely:
//
//   - Name is cleared (display-only).
//   - Model.Workers is cleared (engine parallelism; results are bit-identical
//     across worker counts by construction).
//   - Both parameter bags are resolved against the registries, so omitted
//     parameters and explicitly spelled defaults coincide.
//   - Model defaults (CapFactor/MaxWords/MaxRounds) are filled in.
//   - A graph file reference is kept verbatim for the file family (it is the
//     content address of the graph bytes, so it pins the input graph in the
//     hash) and cleared for generator families.
//   - A capacities block resolves its policy parameter bag; the "uniform"
//     policy normalizes to an absent block (same computation).
//   - Faults normalize to their fault-model spec list (legacy DropProb and
//     DropTo/DropFrom/FromRound knobs become the equivalent "iid-drop" and
//     "link-cut" specs), with model parameter bags resolved and To/From sets
//     sorted; a block that lowers to no specs at all normalizes to nil. The
//     spec list order is preserved — it feeds each spec's seed derivation.
//   - A kmachine accounting block keeps its K and has a defaulted Bandwidth
//     filled in; an absent block stays absent (accounting is hash-relevant
//     because it changes the Record).
//   - A sweep with no axes normalizes to nil; axis values are sorted.
//     Sorting makes sweeps order-insensitive: permuted submissions execute
//     the same run multiset, so they share a cache entry (the cached stream
//     carries the first submission's record order). Duplicated axis values
//     are NOT deduplicated — they genuinely repeat runs.
//
// Canonicalization fails when the algorithm or graph family is unknown or a
// parameter bag does not resolve; Validate reports those more precisely.
func (s Scenario) Canonical() (Scenario, error) {
	c := s
	c.Name = ""
	d, ok := algo.Get(s.Algo)
	if !ok {
		return c, algo.ErrUnknown(s.Algo)
	}
	var err error
	if c.Params, err = param.Resolve(s.Params, d.Params); err != nil {
		return c, fmt.Errorf("algorithm %s: %w", s.Algo, err)
	}
	f, ok := graph.GetFamily(s.Graph.Family)
	if !ok {
		return c, fmt.Errorf("unknown graph family %q", s.Graph.Family)
	}
	if c.Graph.Params, err = param.Resolve(s.Graph.Params, f.Params); err != nil {
		return c, fmt.Errorf("graph family %s: %w", s.Graph.Family, err)
	}
	if !f.Seeded {
		c.Graph.Seed = 0
	}
	// A file reference IS the graph content's address, so it stays verbatim
	// and the graph bytes are pinned by the scenario hash; for generator
	// families a stray File is display noise and is cleared.
	if !f.FromFile {
		c.Graph.File = ""
	}
	if c.Capacities, err = canonicalCapacities(s.Capacities); err != nil {
		return c, err
	}
	m := s.Model
	if m.CapFactor == 0 {
		m.CapFactor = ncc.DefaultCapFactor
	}
	if m.MaxWords == 0 {
		m.MaxWords = ncc.DefaultMaxWords
	}
	if m.MaxRounds == 0 {
		m.MaxRounds = ncc.DefaultMaxRounds
	}
	m.Workers = 0
	c.Model = m
	if c.Faults, err = canonicalFaults(s.Faults); err != nil {
		return c, err
	}
	if c.Sweep, err = canonicalSweep(s.Sweep); err != nil {
		return c, err
	}
	if s.KMachine != nil {
		km := *s.KMachine
		if km.Bandwidth == 0 {
			km.Bandwidth = DefaultKMachineBandwidth
		}
		c.KMachine = &km
	}
	return c, nil
}

// canonicalCapacities resolves a capacities block to its normal form: the
// policy's parameter bag is resolved (defaults pinned), and the "uniform"
// policy — the meaning of an absent block — normalizes to nil, so spelling
// uniformity out loud does not change the hash.
func canonicalCapacities(cs *graph.CapacitySpec) (*graph.CapacitySpec, error) {
	if cs == nil {
		return nil, nil
	}
	p, ok := graph.GetCapacityPolicy(cs.Policy)
	if !ok {
		return nil, fmt.Errorf("unknown capacity policy %q", cs.Policy)
	}
	v, err := param.Resolve(cs.Params, p.Params)
	if err != nil {
		return nil, fmt.Errorf("capacity policy %s: %w", cs.Policy, err)
	}
	if cs.Policy == "uniform" {
		return nil, nil
	}
	out := graph.CapacitySpec{Policy: cs.Policy, Params: v}
	if len(cs.Values) > 0 {
		out.Values = slices.Clone(cs.Values)
	}
	return &out, nil
}

func canonicalFaults(f *Faults) (*Faults, error) {
	specs := f.specs() // legacy knobs lower to their equivalent model specs
	if len(specs) == 0 {
		return nil, nil
	}
	out := make([]faultmodel.Spec, len(specs))
	for i, sp := range specs {
		m, ok := faultmodel.Get(sp.Model)
		if !ok {
			return nil, fmt.Errorf("faults.models[%d]: %w", i, faultmodel.ErrUnknown(sp.Model))
		}
		p, err := param.Resolve(sp.Params, m.Params)
		if err != nil {
			return nil, fmt.Errorf("fault model %s: %w", sp.Model, err)
		}
		out[i] = faultmodel.Spec{Model: sp.Model, Params: p, To: sortedCopy(sp.To), From: sortedCopy(sp.From)}
	}
	return &Faults{Models: out}, nil
}

func canonicalSweep(sw *Sweep) (*Sweep, error) {
	if sw == nil {
		return nil, nil
	}
	cs := Sweep{
		N:         sortedCopy(sw.N),
		CapFactor: sortedCopy(sw.CapFactor),
		Seeds:     sortedCopy(sw.Seeds),
	}
	// Fault variants keep their order (each is a distinct run of the
	// expansion) but normalize entry-wise; a variant lowering to no specs is
	// the canonical fault-free entry, the zero Faults.
	for i := range sw.Faults {
		cf, err := canonicalFaults(&sw.Faults[i])
		if err != nil {
			return nil, fmt.Errorf("sweep.faults[%d]: %w", i, err)
		}
		if cf == nil {
			cf = &Faults{}
		}
		cs.Faults = append(cs.Faults, *cf)
	}
	if len(cs.N) == 0 && len(cs.CapFactor) == 0 && len(cs.Seeds) == 0 && len(cs.Faults) == 0 {
		return nil, nil
	}
	return &cs, nil
}

func sortedCopy[T int | int64](v []T) []T {
	if len(v) == 0 {
		return nil
	}
	out := slices.Clone(v)
	slices.Sort(out)
	return out
}

// Hash returns the content address of a scenario: the hex SHA-256 of its
// canonical form's JSON encoding (encoding/json sorts map keys, and the
// canonical form pins every default, so the encoding is deterministic). Two
// scenarios hash equal exactly when they specify the same computation; the
// result cache and the scenario service key on it.
func (s Scenario) Hash() (string, error) {
	c, err := s.Canonical()
	if err != nil {
		return "", err
	}
	b, err := json.Marshal(c)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
