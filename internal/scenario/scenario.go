// Package scenario is the declarative execution spec shared by the CLIs and
// the benchmark harness: one Scenario names a graph spec, an algorithm with
// parameters, the clique model, optional fault injection, and an optional
// sweep over n / capfactor / seeds. Scenarios decode from JSON files or are
// assembled from CLI flags; runs produce JSON-serializable Records (scenario
// echo + graph info + stats + verification status) so sweep results become
// diffable artifacts.
package scenario

import (
	"fmt"
	"os"

	"ncc/internal/algo"
	"ncc/internal/graph"
	"ncc/internal/kmachine"
	"ncc/internal/ncc"
	"ncc/internal/param"
)

// Model is the serializable slice of ncc.Config a scenario controls. Zero
// values mean the engine defaults; runs are strict unless NonStrict is set.
type Model struct {
	CapFactor int   `json:"capfactor,omitempty"`
	MaxWords  int   `json:"maxwords,omitempty"`
	MaxRounds int   `json:"maxrounds,omitempty"`
	Workers   int   `json:"workers,omitempty"`
	Seed      int64 `json:"seed,omitempty"`
	NonStrict bool  `json:"nonstrict,omitempty"`
}

// Faults declares fault injection: independent message drops and/or a
// declarative link interceptor (drop everything to/from the listed nodes from
// round FromRound on).
type Faults struct {
	DropProb  float64 `json:"dropprob,omitempty"`
	DropTo    []int   `json:"dropto,omitempty"`
	DropFrom  []int   `json:"dropfrom,omitempty"`
	FromRound int     `json:"fromround,omitempty"`
}

// interceptor compiles the declarative link faults to an ncc.Interceptor
// (nil when only DropProb is set).
func (f *Faults) interceptor() ncc.Interceptor {
	if f == nil || (len(f.DropTo) == 0 && len(f.DropFrom) == 0) {
		return nil
	}
	to := map[ncc.NodeID]bool{}
	for _, v := range f.DropTo {
		to[v] = true
	}
	from := map[ncc.NodeID]bool{}
	for _, v := range f.DropFrom {
		from[v] = true
	}
	start := f.FromRound
	return func(round int, src, dst ncc.NodeID) bool {
		if round < start {
			return true
		}
		return !to[dst] && !from[src]
	}
}

// Sweep declares the axes of a parameter sweep. Every listed n overrides the
// graph spec's "n" parameter; every capfactor overrides the model; every seed
// overrides both the model seed and the graph seed (independent trials).
// Empty axes keep the scenario's own value. Expansion order is deterministic:
// n outermost, then capfactor, then seeds.
type Sweep struct {
	N         []int   `json:"n,omitempty"`
	CapFactor []int   `json:"capfactor,omitempty"`
	Seeds     []int64 `json:"seeds,omitempty"`
}

// KMachine declares k-machine-model accounting for a run (Appendix A): the
// clique's messages are additionally routed over a complete network of K
// machines with Bandwidth words per directed link per k-machine round, and
// the Record reports how many k-machine rounds the algorithm's traffic would
// have cost. Accounting is an observer — it never changes the run itself, but
// it is part of the declarative spec (and the canonical hash), because the
// Record it produces differs.
type KMachine struct {
	K         int `json:"k"`
	Bandwidth int `json:"bandwidth,omitempty"` // words per link per round (default 4)
}

// DefaultKMachineBandwidth is the per-link word budget assumed when a
// kmachine block omits it.
const DefaultKMachineBandwidth = 4

// Scenario is one declarative execution spec.
type Scenario struct {
	Name     string       `json:"name,omitempty"`
	Algo     string       `json:"algo"`
	Graph    graph.Spec   `json:"graph"`
	Params   param.Values `json:"params,omitempty"`
	Model    Model        `json:"model,omitempty"`
	Faults   *Faults      `json:"faults,omitempty"`
	Sweep    *Sweep       `json:"sweep,omitempty"`
	KMachine *KMachine    `json:"kmachine,omitempty"`
}

// GraphInfo describes the materialized input graph of one run.
type GraphInfo struct {
	Desc       string `json:"desc"`
	N          int    `json:"n"`
	M          int    `json:"m"`
	MaxDegree  int    `json:"maxDegree"`
	Degeneracy int    `json:"degeneracy"`
}

// Record is the JSON-serializable result of one concrete run: the scenario
// echo (sweep-expanded), the materialized graph, the model capacity, the run
// statistics, the summarizer's digest, and the verification status. A Record
// with a non-empty Error field describes a run that failed outright.
type Record struct {
	Scenario  Scenario           `json:"scenario"`
	Graph     GraphInfo          `json:"graph"`
	Capacity  int                `json:"capacity"`
	Summary   string             `json:"summary,omitempty"`
	Metrics   map[string]float64 `json:"metrics,omitempty"`
	Stats     ncc.Stats          `json:"stats"`
	KMachine  *kmachine.Result   `json:"kmachine,omitempty"`
	Verified  bool               `json:"verified"`
	VerifyErr string             `json:"verifyError,omitempty"`
	Error     string             `json:"error,omitempty"`
}

// Load reads a Scenario from a JSON file with strict field checking (see
// Decode): unknown fields are rejected with their full path.
func Load(path string) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, err
	}
	s, err := Decode(data)
	if err != nil {
		return s, fmt.Errorf("scenario %s: %w", path, err)
	}
	return s, nil
}

// Validate checks the statically checkable parts of a scenario: the algorithm
// and graph family exist and both parameter bags resolve. Usage errors caught
// here are distinguishable from run failures (CLI exit 2 vs 1).
func (s Scenario) Validate() error {
	d, ok := algo.Get(s.Algo)
	if !ok {
		return algo.ErrUnknown(s.Algo)
	}
	if _, err := param.Resolve(s.Params, d.Params); err != nil {
		return fmt.Errorf("algorithm %s: %w", s.Algo, err)
	}
	f, ok := graph.GetFamily(s.Graph.Family)
	if !ok {
		return fmt.Errorf("unknown graph family %q", s.Graph.Family)
	}
	if _, err := param.Resolve(s.Graph.Params, f.Params); err != nil {
		return fmt.Errorf("graph family %s: %w", s.Graph.Family, err)
	}
	if km := s.KMachine; km != nil {
		if km.K < 1 {
			return fmt.Errorf("kmachine.k = %d, need >= 1", km.K)
		}
		if km.Bandwidth < 0 {
			return fmt.Errorf("kmachine.bandwidth = %d, need >= 0 (0 means the default %d)", km.Bandwidth, DefaultKMachineBandwidth)
		}
	}
	if s.Sweep != nil {
		if _, hasN := s.Graph.Params["n"]; len(s.Sweep.N) > 0 && !hasN {
			ok := false
			for _, def := range f.Params {
				if def.Name == "n" {
					ok = true
				}
			}
			if !ok {
				return fmt.Errorf("graph family %s has no n parameter to sweep", s.Graph.Family)
			}
		}
	}
	return nil
}

// Expand resolves the sweep into concrete scenarios (itself, if there is no
// sweep). The order is deterministic: n outermost, then capfactor, then seeds.
func (s Scenario) Expand() []Scenario {
	if s.Sweep == nil {
		return []Scenario{s}
	}
	sw := *s.Sweep
	var out []Scenario
	forEachInt(sw.N, func(n int, hasN bool) {
		forEachInt(sw.CapFactor, func(cf int, hasCF bool) {
			seeds := sw.Seeds
			hasSeeds := len(seeds) > 0
			if !hasSeeds {
				seeds = []int64{0}
			}
			for _, seed := range seeds {
				c := s
				c.Sweep = nil
				c.Params = s.Params.Clone()
				c.Graph.Params = s.Graph.Params.Clone()
				if hasN {
					c.Graph.Params["n"] = float64(n)
				}
				if hasCF {
					c.Model.CapFactor = cf
				}
				if hasSeeds {
					c.Model.Seed = seed
					c.Graph.Seed = seed
				}
				out = append(out, c)
			}
		})
	})
	return out
}

// forEachInt visits every value of axis, or a single "unset" marker when the
// axis is empty.
func forEachInt(axis []int, fn func(v int, set bool)) {
	if len(axis) == 0 {
		fn(0, false)
		return
	}
	for _, v := range axis {
		fn(v, true)
	}
}

// config assembles the ncc.Config for a graph of n nodes.
func (m Model) config(n int) ncc.Config {
	return ncc.Config{
		N:         n,
		CapFactor: m.CapFactor,
		MaxWords:  m.MaxWords,
		MaxRounds: m.MaxRounds,
		Workers:   m.Workers,
		Seed:      m.Seed,
		Strict:    !m.NonStrict,
	}
}

// RunOpts carries per-run hooks that are not part of the declarative spec
// and therefore never appear in the Record's scenario echo or the canonical
// hash: an Observer, a cancellation channel wired into the engine's abort
// path, and a worker-count override (the service's scheduler hands each run
// however many workers its global budget can spare; results are bit-identical
// across worker counts, so the override is invisible in the Record).
type RunOpts struct {
	Observer ncc.Observer
	Cancel   <-chan struct{}
	Workers  int
}

// RunOne executes one concrete (sweep-free) scenario. obs, if non-nil, is
// attached as the run's round observer (e.g. a *ncc.Timeline). The returned
// error covers spec and simulation failures; verification failures are
// recorded in the Record only.
func RunOne(s Scenario, obs ncc.Observer) (Record, error) {
	return RunOneWith(s, RunOpts{Observer: obs})
}

// RunOneWith is RunOne with the full set of per-run hooks.
func RunOneWith(s Scenario, opts RunOpts) (Record, error) {
	rec := Record{Scenario: s}
	if s.Sweep != nil {
		return rec, fmt.Errorf("scenario %s: RunOne on an unexpanded sweep", s.Name)
	}
	d, ok := algo.Get(s.Algo)
	if !ok {
		return rec, algo.ErrUnknown(s.Algo)
	}
	g, err := graph.Build(s.Graph)
	if err != nil {
		return rec, err
	}
	deg, _ := graph.Degeneracy(g)
	rec.Graph = GraphInfo{Desc: g.String(), N: g.N(), M: g.M(), MaxDegree: g.MaxDegree(), Degeneracy: deg}
	cfg := s.Model.config(g.N())
	cfg.Observer = opts.Observer
	cfg.Cancel = opts.Cancel
	if opts.Workers != 0 {
		cfg.Workers = opts.Workers
	}
	if s.Faults != nil {
		cfg.DropProb = s.Faults.DropProb
		cfg.Interceptor = s.Faults.interceptor()
	}
	var acct *kmachine.Accountant
	if km := s.KMachine; km != nil {
		bw := km.Bandwidth
		if bw == 0 {
			bw = DefaultKMachineBandwidth
		}
		acct, err = kmachine.NewAccountant(km.K, bw, g.N(), s.Model.Seed)
		if err != nil {
			return rec, err
		}
		cfg.Observer = chainObservers(acct, opts.Observer)
	}
	rec.Capacity = cfg.Cap()
	res, err := d.Execute(cfg, g, s.Params)
	if err != nil {
		return rec, err
	}
	rec.Summary = res.Summary
	rec.Metrics = res.Metrics
	rec.Stats = res.Stats
	rec.Verified = res.Verified
	rec.VerifyErr = res.VerifyErr
	if acct != nil {
		kres := acct.Result()
		kres.NCCRounds = res.Stats.Rounds
		rec.KMachine = &kres
	}
	return rec, nil
}

// multiObserver fans one engine round out to several observers in order.
type multiObserver []ncc.Observer

func (m multiObserver) ObserveRound(round int, msgs []ncc.Envelope) {
	for _, o := range m {
		o.ObserveRound(round, msgs)
	}
}

// chainObservers combines the k-machine accountant with an optional caller
// observer without boxing nils into the interface.
func chainObservers(a ncc.Observer, b ncc.Observer) ncc.Observer {
	if b == nil {
		return a
	}
	return multiObserver{a, b}
}

// Run expands and executes a scenario. Individual run failures do not abort
// the sweep; they are recorded in the Record's Error field so a sweep
// artifact always has one entry per expanded scenario.
func Run(s Scenario) []Record {
	var out []Record
	for _, c := range s.Expand() {
		rec, err := RunOne(c, nil)
		if err != nil {
			rec.Error = err.Error()
		}
		out = append(out, rec)
	}
	return out
}
