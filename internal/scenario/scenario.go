// Package scenario is the declarative execution spec shared by the CLIs and
// the benchmark harness: one Scenario names a graph spec, an algorithm with
// parameters, the clique model, optional fault injection, and an optional
// sweep over n / capfactor / seeds / faults. Scenarios decode from JSON
// files or are assembled from CLI flags; runs produce JSON-serializable
// Records (scenario echo + graph info + stats + verification status) so
// sweep results become diffable artifacts.
//
// Fault injection is declarative: a Faults block lists fault-model specs
// ("crash", "churn", "adversarial", ...) that the faultmodel registry
// compiles into a deterministic schedule seeded from the run seed, so a
// faulted run replays byte-identically anywhere — locally, on a cluster
// worker after a redispatch, or out of the result cache. Faulted runs do
// not hard-fail verification; their Records instead carry a degradation
// report (unfinished/down counts, reachable fraction, and a survivor-only
// correctness verdict). The legacy flat knobs (dropprob, dropto/dropfrom/
// fromround) remain accepted and canonicalize to the equivalent model
// specs, so both spellings share one cache hash.
package scenario

import (
	"fmt"
	"os"
	"slices"

	"ncc/internal/algo"
	"ncc/internal/faultmodel"
	"ncc/internal/graph"
	"ncc/internal/graphio" // installs the "file" graph-family resolver
	"ncc/internal/kmachine"
	"ncc/internal/ncc"
	"ncc/internal/obs"
	"ncc/internal/param"
)

// Model is the serializable slice of ncc.Config a scenario controls. Zero
// values mean the engine defaults; runs are strict unless NonStrict is set.
type Model struct {
	CapFactor int   `json:"capfactor,omitempty"`
	MaxWords  int   `json:"maxwords,omitempty"`
	MaxRounds int   `json:"maxrounds,omitempty"`
	Workers   int   `json:"workers,omitempty"`
	Seed      int64 `json:"seed,omitempty"`
	NonStrict bool  `json:"nonstrict,omitempty"`
}

// Faults declares fault injection as a list of fault-model blocks (Models,
// compiled by the faultmodel registry against the run seed and the built
// graph). The flat legacy knobs — DropProb for i.i.d. message loss, and
// DropTo/DropFrom/FromRound for a link cut — remain accepted and compile to
// the equivalent "iid-drop" and "link-cut" model specs; new scenarios should
// write Models directly. Declaring any fault block (even one that schedules
// nothing) switches the engine into failure-isolation mode: node programs
// degrade instead of failing hard, and Records carry a degradation report.
type Faults struct {
	DropProb  float64           `json:"dropprob,omitempty"`
	DropTo    []int             `json:"dropto,omitempty"`
	DropFrom  []int             `json:"dropfrom,omitempty"`
	FromRound int               `json:"fromround,omitempty"`
	Models    []faultmodel.Spec `json:"models,omitempty"`
}

// specs lowers the block to the fault-model spec list it means: the legacy
// knobs become their equivalent registry specs (in a fixed order, so the
// compile seed derivation is stable), followed by the explicit Models.
func (f *Faults) specs() []faultmodel.Spec {
	if f == nil {
		return nil
	}
	var out []faultmodel.Spec
	if f.DropProb > 0 {
		out = append(out, faultmodel.Spec{
			Model:  "iid-drop",
			Params: param.Values{"p": f.DropProb},
		})
	}
	if len(f.DropTo) > 0 || len(f.DropFrom) > 0 {
		out = append(out, faultmodel.Spec{
			Model:  "link-cut",
			Params: param.Values{"fromround": float64(f.FromRound)},
			To:     f.DropTo,
			From:   f.DropFrom,
		})
	}
	return append(out, f.Models...)
}

// validate statically checks the block; n > 0 bounds node ids (0 means the
// clique size is not yet known). Errors name the offending field.
func (f *Faults) validate(n int) error {
	if f.DropProb < 0 || f.DropProb > 1 {
		return fmt.Errorf("dropprob = %v out of [0,1]", f.DropProb)
	}
	if f.FromRound < 0 {
		return fmt.Errorf("fromround = %d, need >= 0", f.FromRound)
	}
	for i, v := range f.DropTo {
		if v < 0 || (n > 0 && v >= n) {
			return fmt.Errorf("dropto[%d] = %d out of [0,%d)", i, v, n)
		}
	}
	for i, v := range f.DropFrom {
		if v < 0 || (n > 0 && v >= n) {
			return fmt.Errorf("dropfrom[%d] = %d out of [0,%d)", i, v, n)
		}
	}
	for i, sp := range f.Models {
		if err := faultmodel.Validate(sp, n); err != nil {
			return fmt.Errorf("models[%d]: %w", i, err)
		}
	}
	return nil
}

// Sweep declares the axes of a parameter sweep. Every listed n overrides the
// graph spec's "n" parameter; every capfactor overrides the model; every seed
// overrides both the model seed and the graph seed (independent trials);
// every faults entry replaces the scenario's whole fault block (an empty
// entry {} means "this variant runs fault-free"). Empty axes keep the
// scenario's own value. Expansion order is deterministic: n outermost, then
// capfactor, then seeds, then faults.
type Sweep struct {
	N         []int    `json:"n,omitempty"`
	CapFactor []int    `json:"capfactor,omitempty"`
	Seeds     []int64  `json:"seeds,omitempty"`
	Faults    []Faults `json:"faults,omitempty"`
}

// KMachine declares k-machine-model accounting for a run (Appendix A): the
// clique's messages are additionally routed over a complete network of K
// machines with Bandwidth words per directed link per k-machine round, and
// the Record reports how many k-machine rounds the algorithm's traffic would
// have cost. Accounting is an observer — it never changes the run itself, but
// it is part of the declarative spec (and the canonical hash), because the
// Record it produces differs.
type KMachine struct {
	K         int `json:"k"`
	Bandwidth int `json:"bandwidth,omitempty"` // words per link per round (default 4)
}

// DefaultKMachineBandwidth is the per-link word budget assumed when a
// kmachine block omits it.
const DefaultKMachineBandwidth = 4

// Scenario is one declarative execution spec.
type Scenario struct {
	Name   string       `json:"name,omitempty"`
	Algo   string       `json:"algo"`
	Graph  graph.Spec   `json:"graph"`
	Params param.Values `json:"params,omitempty"`
	Model  Model        `json:"model,omitempty"`
	// Capacities assigns heterogeneous per-node capacities through a
	// registered capacity policy ("uniform", "degree", "file", "explicit").
	// Absent means uniform capacities, the plain NCC model.
	Capacities *graph.CapacitySpec `json:"capacities,omitempty"`
	Faults     *Faults             `json:"faults,omitempty"`
	Sweep      *Sweep              `json:"sweep,omitempty"`
	KMachine   *KMachine           `json:"kmachine,omitempty"`
}

// GraphInfo describes the materialized input graph of one run.
type GraphInfo struct {
	Desc       string `json:"desc"`
	N          int    `json:"n"`
	M          int    `json:"m"`
	MaxDegree  int    `json:"maxDegree"`
	Degeneracy int    `json:"degeneracy"`
}

// Record is the JSON-serializable result of one concrete run: the scenario
// echo (sweep-expanded), the materialized graph, the model capacity, the run
// statistics, the summarizer's digest, and the verification status. A Record
// with a non-empty Error field describes a run that failed outright.
type Record struct {
	Scenario Scenario  `json:"scenario"`
	Graph    GraphInfo `json:"graph"`
	Capacity int       `json:"capacity"`
	// CapMin/CapMax bound the per-node capacities of a heterogeneous run
	// (zero and omitted when the run is uniform, where Capacity is exact).
	CapMin    int                `json:"capMin,omitempty"`
	CapMax    int                `json:"capMax,omitempty"`
	Summary   string             `json:"summary,omitempty"`
	Metrics   map[string]float64 `json:"metrics,omitempty"`
	Stats     ncc.Stats          `json:"stats"`
	KMachine  *kmachine.Result   `json:"kmachine,omitempty"`
	Verified  bool               `json:"verified"`
	VerifyErr string             `json:"verifyError,omitempty"`
	// Degradation reports how a fault-injected run degraded (present exactly
	// when the scenario declared faults and the run itself succeeded).
	Degradation *algo.DegradationReport `json:"degradation,omitempty"`
	Error       string                  `json:"error,omitempty"`
}

// Load reads a Scenario from a JSON file with strict field checking (see
// Decode): unknown fields are rejected with their full path.
func Load(path string) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, err
	}
	s, err := Decode(data)
	if err != nil {
		return s, fmt.Errorf("scenario %s: %w", path, err)
	}
	return s, nil
}

// Validate checks the statically checkable parts of a scenario: the algorithm
// and graph family exist and both parameter bags resolve. Usage errors caught
// here are distinguishable from run failures (CLI exit 2 vs 1).
func (s Scenario) Validate() error {
	d, ok := algo.Get(s.Algo)
	if !ok {
		return algo.ErrUnknown(s.Algo)
	}
	if _, err := param.Resolve(s.Params, d.Params); err != nil {
		return fmt.Errorf("algorithm %s: %w", s.Algo, err)
	}
	f, ok := graph.GetFamily(s.Graph.Family)
	if !ok {
		return fmt.Errorf("unknown graph family %q", s.Graph.Family)
	}
	if _, err := param.Resolve(s.Graph.Params, f.Params); err != nil {
		return fmt.Errorf("graph family %s: %w", s.Graph.Family, err)
	}
	if f.FromFile {
		if s.Graph.File == "" {
			return fmt.Errorf("graph.file: required for the %s family (the 64-hex content hash printed by nccgraph ingest)", s.Graph.Family)
		}
		if !graphio.ValidHash(s.Graph.File) {
			return fmt.Errorf("graph.file: %q is not a 64-hex content hash", s.Graph.File)
		}
	} else if s.Graph.File != "" {
		return fmt.Errorf("graph.file: only valid for the file family (family %s generates its graph)", s.Graph.Family)
	}
	if km := s.KMachine; km != nil {
		if km.K < 1 {
			return fmt.Errorf("kmachine.k = %d, need >= 1", km.K)
		}
		if km.Bandwidth < 0 {
			return fmt.Errorf("kmachine.bandwidth = %d, need >= 0 (0 means the default %d)", km.Bandwidth, DefaultKMachineBandwidth)
		}
	}
	// Bound fault node ids against the clique size when it is statically
	// known (the resolved graph "n" parameter, unless a sweep overrides n).
	n := 0
	if gp, err := param.Resolve(s.Graph.Params, f.Params); err == nil {
		if v, ok := gp["n"]; ok && (s.Sweep == nil || len(s.Sweep.N) == 0) {
			n = int(v)
		}
	}
	if s.Capacities != nil {
		if err := graph.ValidateCapacitySpec(*s.Capacities, n); err != nil {
			return fmt.Errorf("capacities.%w", err)
		}
	}
	if s.Faults != nil {
		if err := s.Faults.validate(n); err != nil {
			return fmt.Errorf("faults.%w", err)
		}
	}
	if s.Sweep != nil {
		if _, hasN := s.Graph.Params["n"]; len(s.Sweep.N) > 0 && !hasN {
			ok := false
			for _, def := range f.Params {
				if def.Name == "n" {
					ok = true
				}
			}
			if !ok {
				return fmt.Errorf("graph family %s has no n parameter to sweep", s.Graph.Family)
			}
		}
		for i := range s.Sweep.Faults {
			if err := s.Sweep.Faults[i].validate(n); err != nil {
				return fmt.Errorf("sweep.faults[%d].%w", i, err)
			}
		}
	}
	return nil
}

// Expand resolves the sweep into concrete scenarios (itself, if there is no
// sweep). The order is deterministic: n outermost, then capfactor, then seeds.
func (s Scenario) Expand() []Scenario {
	if s.Sweep == nil {
		return []Scenario{s}
	}
	sw := *s.Sweep
	var out []Scenario
	forEachInt(sw.N, func(n int, hasN bool) {
		forEachInt(sw.CapFactor, func(cf int, hasCF bool) {
			seeds := sw.Seeds
			hasSeeds := len(seeds) > 0
			if !hasSeeds {
				seeds = []int64{0}
			}
			for _, seed := range seeds {
				faults := sw.Faults
				hasFaults := len(faults) > 0
				if !hasFaults {
					faults = []Faults{{}}
				}
				for fi := range faults {
					c := s
					c.Sweep = nil
					c.Params = s.Params.Clone()
					c.Graph.Params = s.Graph.Params.Clone()
					if hasN {
						c.Graph.Params["n"] = float64(n)
					}
					if hasCF {
						c.Model.CapFactor = cf
					}
					if hasSeeds {
						c.Model.Seed = seed
						c.Graph.Seed = seed
					}
					if hasFaults {
						fb := faults[fi]
						c.Faults = &fb
					}
					out = append(out, c)
				}
			}
		})
	})
	return out
}

// forEachInt visits every value of axis, or a single "unset" marker when the
// axis is empty.
func forEachInt(axis []int, fn func(v int, set bool)) {
	if len(axis) == 0 {
		fn(0, false)
		return
	}
	for _, v := range axis {
		fn(v, true)
	}
}

// config assembles the ncc.Config for a graph of n nodes.
func (m Model) config(n int) ncc.Config {
	return ncc.Config{
		N:         n,
		CapFactor: m.CapFactor,
		MaxWords:  m.MaxWords,
		MaxRounds: m.MaxRounds,
		Workers:   m.Workers,
		Seed:      m.Seed,
		Strict:    !m.NonStrict,
	}
}

// RunOpts carries per-run hooks that are not part of the declarative spec
// and therefore never appear in the Record's scenario echo or the canonical
// hash: an Observer, a cancellation channel wired into the engine's abort
// path, and a worker-count override (the service's scheduler hands each run
// however many workers its global budget can spare; results are bit-identical
// across worker counts, so the override is invisible in the Record).
type RunOpts struct {
	Observer ncc.Observer
	Cancel   <-chan struct{}
	Workers  int

	// Probe, if non-nil, receives the engine's per-round telemetry samples
	// (see ncc.RoundProbe). Like the other hooks it never enters the
	// canonical hash; the samples themselves are deterministic, which is what
	// makes serialized traces content-addressable.
	Probe ncc.RoundProbe
}

// RunOne executes one concrete (sweep-free) scenario. obs, if non-nil, is
// attached as the run's round observer (e.g. a *ncc.Timeline). The returned
// error covers spec and simulation failures; verification failures are
// recorded in the Record only.
func RunOne(s Scenario, obs ncc.Observer) (Record, error) {
	return RunOneWith(s, RunOpts{Observer: obs})
}

// RunOneWith is RunOne with the full set of per-run hooks.
func RunOneWith(s Scenario, opts RunOpts) (Record, error) {
	rec := Record{Scenario: s}
	if s.Sweep != nil {
		return rec, fmt.Errorf("scenario %s: RunOne on an unexpanded sweep", s.Name)
	}
	d, ok := algo.Get(s.Algo)
	if !ok {
		return rec, algo.ErrUnknown(s.Algo)
	}
	g, err := graph.Build(s.Graph)
	if err != nil {
		return rec, err
	}
	deg, _ := graph.Degeneracy(g)
	rec.Graph = GraphInfo{Desc: g.String(), N: g.N(), M: g.M(), MaxDegree: g.MaxDegree(), Degeneracy: deg}
	cfg := s.Model.config(g.N())
	cfg.Observer = opts.Observer
	cfg.Probe = opts.Probe
	cfg.Cancel = opts.Cancel
	if opts.Workers != 0 {
		cfg.Workers = opts.Workers
	}
	if s.Capacities != nil {
		caps, err := graph.BuildCapacities(*s.Capacities, g, cfg.Cap())
		if err != nil {
			return rec, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		if caps != nil {
			cfg.NodeCaps = caps
			rec.CapMin, rec.CapMax = slices.Min(caps), slices.Max(caps)
		}
	}
	if specs := s.Faults.specs(); len(specs) > 0 {
		plan, err := faultmodel.Build(specs, faultmodel.Env{G: g, N: g.N(), Seed: cfg.Seed})
		if err != nil {
			return rec, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		cfg.DropProb = plan.DropProb
		cfg.Interceptor = plan.Interceptor
		cfg.FaultPlan = plan
	}
	var acct *kmachine.Accountant
	if km := s.KMachine; km != nil {
		bw := km.Bandwidth
		if bw == 0 {
			bw = DefaultKMachineBandwidth
		}
		acct, err = kmachine.NewAccountant(km.K, bw, g.N(), s.Model.Seed)
		if err != nil {
			return rec, err
		}
		cfg.Observer = chainObservers(acct, opts.Observer)
	}
	rec.Capacity = cfg.Cap()
	res, err := d.Execute(cfg, g, s.Params)
	if err != nil {
		return rec, err
	}
	rec.Summary = res.Summary
	rec.Metrics = res.Metrics
	rec.Stats = res.Stats
	rec.Verified = res.Verified
	rec.VerifyErr = res.VerifyErr
	rec.Degradation = res.Degradation
	if acct != nil {
		kres := acct.Result()
		kres.NCCRounds = res.Stats.Rounds
		rec.KMachine = &kres
	}
	return rec, nil
}

// RunTraced executes one concrete scenario with its telemetry recorded into
// col: the collector's probe is attached to the run (chained before any probe
// already in opts), and the completed run is sealed as one trace segment
// (header, round samples, end line). A scenario that fails before its graph
// is built seals nothing — the engine never produced a round; a scenario
// whose execution fails mid-run seals what it traced with the failed flag
// set. One collector threaded through a sweep yields the sweep's whole trace
// in expansion order.
func RunTraced(c Scenario, col *obs.Collector, opts RunOpts) (Record, error) {
	cp := col.Probe()
	if p := opts.Probe; p != nil {
		opts.Probe = func(s ncc.RoundSample, t []ncc.ShardTiming) {
			cp(s, t)
			p(s, t)
		}
	} else {
		opts.Probe = cp
	}
	rec, err := RunOneWith(c, opts)
	if rec.Capacity > 0 {
		hash, _ := c.Hash() // unhashable scenarios leave the field empty
		col.FinishRun(obs.Header{
			Scenario: hash,
			Algo:     c.Algo,
			Graph:    rec.Graph.Desc,
			N:        rec.Graph.N,
			Seed:     c.Model.Seed,
			Cap:      rec.Capacity,
		}, rec.Stats, err != nil)
	}
	return rec, err
}

// multiObserver fans one engine round out to several observers in order.
type multiObserver []ncc.Observer

func (m multiObserver) ObserveRound(round int, msgs []ncc.Envelope) {
	for _, o := range m {
		o.ObserveRound(round, msgs)
	}
}

// chainObservers combines the k-machine accountant with an optional caller
// observer without boxing nils into the interface.
func chainObservers(a ncc.Observer, b ncc.Observer) ncc.Observer {
	if b == nil {
		return a
	}
	return multiObserver{a, b}
}

// Run expands and executes a scenario. Individual run failures do not abort
// the sweep; they are recorded in the Record's Error field so a sweep
// artifact always has one entry per expanded scenario.
func Run(s Scenario) []Record {
	var out []Record
	for _, c := range s.Expand() {
		rec, err := RunOne(c, nil)
		if err != nil {
			rec.Error = err.Error()
		}
		out = append(out, rec)
	}
	return out
}
