package scenario

import (
	"path/filepath"
	"testing"
)

// TestShippedScenarioFiles pins that every example under scenarios/ parses
// strictly, validates against the registries, and runs at its (small) size:
// one record per expanded run, all of them verified — except for
// fault-injection demos (a faults block that can actually drop messages),
// whose records may instead carry the bounded abort the demo exists to show
// (the collectives are not drop-tolerant; the run fails loudly at maxrounds
// rather than wrongly).
func TestShippedScenarioFiles(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 5 {
		t.Fatalf("found only %d scenario files, want the 5 shipped examples", len(files))
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			s, err := Load(path)
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if _, err := s.Hash(); err != nil {
				t.Fatalf("Hash: %v", err)
			}
			expanded := s.Expand()
			if n := sizeOf(s); n > 256 {
				t.Fatalf("example graph size %d is not small; keep shipped scenarios fast", n)
			}
			faulty := s.Faults != nil &&
				(s.Faults.DropProb > 0 || len(s.Faults.DropTo) > 0 || len(s.Faults.DropFrom) > 0)
			recs := Run(s)
			if len(recs) != len(expanded) {
				t.Fatalf("Run produced %d records for %d expansions", len(recs), len(expanded))
			}
			for i, rec := range recs {
				if faulty {
					continue // fault demos may abort; the record carries the error
				}
				if rec.Error != "" {
					t.Errorf("run %d failed: %s", i, rec.Error)
				} else if !rec.Verified {
					t.Errorf("run %d not verified: %s", i, rec.VerifyErr)
				}
			}
		})
	}
}

// sizeOf estimates the largest node count a scenario can reach, covering the
// families the shipped examples use (n-, rows*cols-, and sweep-sized).
func sizeOf(s Scenario) int {
	n := 0
	if v, ok := s.Graph.Params["n"]; ok {
		n = int(v)
	}
	rows, hasRows := s.Graph.Params["rows"]
	cols, hasCols := s.Graph.Params["cols"]
	if hasRows && hasCols {
		n = max(n, int(rows)*int(cols))
	}
	if s.Sweep != nil {
		for _, v := range s.Sweep.N {
			n = max(n, v)
		}
	}
	if n == 0 {
		n = 64 // family default
	}
	return n
}
