package scenario

import (
	"path/filepath"
	"testing"
)

// TestShippedScenarioFiles pins that every example under scenarios/ parses
// strictly, validates against the registries, and runs at its (small) size:
// one record per expanded run. Fault-free runs must verify; fault-injection
// demos must degrade instead of failing — every record carries a degradation
// report whose survivor verdict is clean (that is the robustness contract the
// demos exist to show).
func TestShippedScenarioFiles(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 8 {
		t.Fatalf("found only %d scenario files, want the 8 shipped examples", len(files))
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			s, err := Load(path)
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if _, err := s.Hash(); err != nil {
				t.Fatalf("Hash: %v", err)
			}
			expanded := s.Expand()
			if n := sizeOf(s); n > 256 {
				t.Fatalf("example graph size %d is not small; keep shipped scenarios fast", n)
			}
			faulty := len(s.Faults.specs()) > 0
			recs := Run(s)
			if len(recs) != len(expanded) {
				t.Fatalf("Run produced %d records for %d expansions", len(recs), len(expanded))
			}
			for i, rec := range recs {
				if rec.Error != "" {
					t.Errorf("run %d failed: %s", i, rec.Error)
					continue
				}
				if !faulty {
					if !rec.Verified {
						t.Errorf("run %d not verified: %s", i, rec.VerifyErr)
					}
					continue
				}
				if rec.Degradation == nil {
					t.Errorf("run %d: faulted record has no degradation report", i)
					continue
				}
				if !rec.Degradation.SurvivorsOK {
					t.Errorf("run %d: survivors inconsistent: %s", i, rec.Degradation.Detail)
				}
			}
		})
	}
}

// sizeOf estimates the largest node count a scenario can reach, covering the
// families the shipped examples use (n-, rows*cols-, and sweep-sized).
func sizeOf(s Scenario) int {
	n := 0
	if v, ok := s.Graph.Params["n"]; ok {
		n = int(v)
	}
	rows, hasRows := s.Graph.Params["rows"]
	cols, hasCols := s.Graph.Params["cols"]
	if hasRows && hasCols {
		n = max(n, int(rows)*int(cols))
	}
	if s.Sweep != nil {
		for _, v := range s.Sweep.N {
			n = max(n, v)
		}
	}
	if n == 0 {
		n = 64 // family default
	}
	return n
}
