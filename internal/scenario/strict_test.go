package scenario

import (
	"strings"
	"testing"
)

func TestDecodeStrictUnknownFields(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of the error; "" means decode must succeed
	}{
		{
			name: "model typo capfator",
			in:   `{"algo":"mis","graph":{"family":"kforest"},"model":{"capfator":4}}`,
			want: `unknown field "model.capfator" (model has capfactor,`,
		},
		{
			name: "top-level typo",
			in:   `{"algos":"mis","graph":{"family":"kforest"}}`,
			want: `unknown field "algos" (scenario has algo,`,
		},
		{
			name: "faults typo",
			in:   `{"algo":"bfs","graph":{"family":"grid"},"faults":{"droprob":0.1}}`,
			want: `unknown field "faults.droprob" (faults has dropfrom, dropprob,`,
		},
		{
			name: "sweep typo",
			in:   `{"algo":"mis","graph":{"family":"kforest"},"sweep":{"seed":[1]}}`,
			want: `unknown field "sweep.seed" (sweep has capfactor, faults, n, seeds)`,
		},
		{
			name: "graph spec typo",
			in:   `{"algo":"mis","graph":{"fam":"kforest"}}`,
			want: `unknown field "graph.fam" (graph has family, file, params, seed)`,
		},
		{
			name: "valid scenario with params passes",
			in:   `{"algo":"mis","graph":{"family":"kforest","params":{"n":32,"k":2}},"model":{"capfactor":4},"sweep":{"seeds":[1,2]}}`,
			want: "",
		},
		{
			name: "free-form param names are not field errors",
			in:   `{"algo":"mis","graph":{"family":"kforest","params":{"definitely-not-a-field":1}}}`,
			want: "", // Validate rejects the param name, not Decode
		},
		{
			name: "case-insensitive match like encoding/json",
			in:   `{"Algo":"mis","graph":{"Family":"kforest"}}`,
			want: "",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode([]byte(tc.in))
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Decode: unexpected error %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Decode accepted %s, want error containing %q", tc.in, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Decode error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestDecodeTypoDoesNotRunDefaults is the regression the strict decoder
// exists for: a misspelled model field must fail the load, not silently run
// with the default capacity.
func TestDecodeTypoDoesNotRunDefaults(t *testing.T) {
	_, err := Decode([]byte(`{"algo":"mis","graph":{"family":"kforest","params":{"n":16}},"model":{"capfator":1}}`))
	if err == nil {
		t.Fatal("scenario with misspelled model field decoded cleanly")
	}
}
