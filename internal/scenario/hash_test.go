package scenario

import (
	"testing"

	"ncc/internal/ncc"
)

func mustHash(t *testing.T, js string) string {
	t.Helper()
	s, err := Decode([]byte(js))
	if err != nil {
		t.Fatalf("Decode(%s): %v", js, err)
	}
	h, err := s.Hash()
	if err != nil {
		t.Fatalf("Hash(%s): %v", js, err)
	}
	return h
}

func TestHashInvariances(t *testing.T) {
	base := `{"algo":"mis","graph":{"family":"kforest","params":{"n":32,"k":2},"seed":1},"model":{"capfactor":8,"seed":1},"sweep":{"n":[32,64],"seeds":[1,2,3]}}`
	want := mustHash(t, base)
	same := []struct {
		name string
		js   string
	}{
		{
			name: "JSON key order",
			js:   `{"sweep":{"seeds":[1,2,3],"n":[32,64]},"model":{"seed":1,"capfactor":8},"graph":{"seed":1,"params":{"k":2,"n":32},"family":"kforest"},"algo":"mis"}`,
		},
		{
			name: "omitted default capfactor",
			js:   `{"algo":"mis","graph":{"family":"kforest","params":{"n":32,"k":2},"seed":1},"model":{"seed":1},"sweep":{"n":[32,64],"seeds":[1,2,3]}}`,
		},
		{
			name: "omitted default graph param k",
			js:   `{"algo":"mis","graph":{"family":"kforest","params":{"n":32},"seed":1},"model":{"capfactor":8,"seed":1},"sweep":{"n":[32,64],"seeds":[1,2,3]}}`,
		},
		{
			name: "explicit default maxwords and maxrounds",
			js:   `{"algo":"mis","graph":{"family":"kforest","params":{"n":32,"k":2},"seed":1},"model":{"capfactor":8,"maxwords":12,"maxrounds":2097152,"seed":1},"sweep":{"n":[32,64],"seeds":[1,2,3]}}`,
		},
		{
			name: "sweep axis permutation",
			js:   `{"algo":"mis","graph":{"family":"kforest","params":{"n":32,"k":2},"seed":1},"model":{"capfactor":8,"seed":1},"sweep":{"n":[64,32],"seeds":[3,1,2]}}`,
		},
		{
			name: "display name and workers differ",
			js:   `{"name":"another-name","algo":"mis","graph":{"family":"kforest","params":{"n":32,"k":2},"seed":1},"model":{"capfactor":8,"seed":1,"workers":4},"sweep":{"n":[32,64],"seeds":[1,2,3]}}`,
		},
	}
	for _, tc := range same {
		t.Run(tc.name, func(t *testing.T) {
			if got := mustHash(t, tc.js); got != want {
				t.Fatalf("hash changed: got %s, want %s", got, want)
			}
		})
	}

	diff := []struct {
		name string
		js   string
	}{
		{
			name: "different algorithm",
			js:   `{"algo":"coloring","graph":{"family":"kforest","params":{"n":32,"k":2},"seed":1},"model":{"capfactor":8,"seed":1},"sweep":{"n":[32,64],"seeds":[1,2,3]}}`,
		},
		{
			name: "different graph param",
			js:   `{"algo":"mis","graph":{"family":"kforest","params":{"n":32,"k":3},"seed":1},"model":{"capfactor":8,"seed":1},"sweep":{"n":[32,64],"seeds":[1,2,3]}}`,
		},
		{
			name: "different capfactor",
			js:   `{"algo":"mis","graph":{"family":"kforest","params":{"n":32,"k":2},"seed":1},"model":{"capfactor":4,"seed":1},"sweep":{"n":[32,64],"seeds":[1,2,3]}}`,
		},
		{
			name: "different seed",
			js:   `{"algo":"mis","graph":{"family":"kforest","params":{"n":32,"k":2},"seed":2},"model":{"capfactor":8,"seed":2},"sweep":{"n":[32,64],"seeds":[1,2,3]}}`,
		},
		{
			name: "faults added",
			js:   `{"algo":"mis","graph":{"family":"kforest","params":{"n":32,"k":2},"seed":1},"model":{"capfactor":8,"seed":1},"faults":{"dropprob":0.01},"sweep":{"n":[32,64],"seeds":[1,2,3]}}`,
		},
		{
			name: "extra sweep value",
			js:   `{"algo":"mis","graph":{"family":"kforest","params":{"n":32,"k":2},"seed":1},"model":{"capfactor":8,"seed":1},"sweep":{"n":[32,64,128],"seeds":[1,2,3]}}`,
		},
		{
			name: "repeated sweep seed is a different run multiset",
			js:   `{"algo":"mis","graph":{"family":"kforest","params":{"n":32,"k":2},"seed":1},"model":{"capfactor":8,"seed":1},"sweep":{"n":[32,64],"seeds":[1,1,2,3]}}`,
		},
		{
			name: "nonstrict flag",
			js:   `{"algo":"mis","graph":{"family":"kforest","params":{"n":32,"k":2},"seed":1},"model":{"capfactor":8,"seed":1,"nonstrict":true},"sweep":{"n":[32,64],"seeds":[1,2,3]}}`,
		},
	}
	for _, tc := range diff {
		t.Run(tc.name, func(t *testing.T) {
			if got := mustHash(t, tc.js); got == want {
				t.Fatalf("semantic change did not change the hash (%s)", tc.name)
			}
		})
	}
}

func TestHashFaultNormalization(t *testing.T) {
	// An all-zero faults block is the same computation as no faults block.
	a := mustHash(t, `{"algo":"bfs","graph":{"family":"grid"}}`)
	b := mustHash(t, `{"algo":"bfs","graph":{"family":"grid"},"faults":{}}`)
	if a != b {
		t.Fatal("empty faults block changed the hash")
	}
	// Link-fault sets are order-insensitive; fromround matters once a set exists.
	c := mustHash(t, `{"algo":"bfs","graph":{"family":"grid"},"faults":{"dropto":[3,1,2],"fromround":5}}`)
	d := mustHash(t, `{"algo":"bfs","graph":{"family":"grid"},"faults":{"dropto":[1,2,3],"fromround":5}}`)
	if c != d {
		t.Fatal("dropto order changed the hash")
	}
	e := mustHash(t, `{"algo":"bfs","graph":{"family":"grid"},"faults":{"dropto":[1,2,3],"fromround":6}}`)
	if c == e {
		t.Fatal("fromround change did not change the hash")
	}
	// fromround without a link set gates nothing and must not split the cache.
	f := mustHash(t, `{"algo":"bfs","graph":{"family":"grid"},"faults":{"dropprob":0.1,"fromround":9}}`)
	g := mustHash(t, `{"algo":"bfs","graph":{"family":"grid"},"faults":{"dropprob":0.1}}`)
	if f != g {
		t.Fatal("irrelevant fromround changed the hash")
	}
}

func TestHashUnseededGraphSeed(t *testing.T) {
	// grid is unseeded: the graph seed cannot change the built graph. The
	// model seed still matters (it seeds the engine).
	a := mustHash(t, `{"algo":"bfs","graph":{"family":"grid","seed":1}}`)
	b := mustHash(t, `{"algo":"bfs","graph":{"family":"grid","seed":2}}`)
	if a != b {
		t.Fatal("seed of an unseeded family changed the hash")
	}
}

func TestCanonicalPinsEngineDefaults(t *testing.T) {
	// The canonical form must spell the engine defaults explicitly; if the
	// defaults ever change, previously cached results no longer describe the
	// same computation and the hash must change with them.
	s, err := Decode([]byte(`{"algo":"mis","graph":{"family":"kforest"}}`))
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if c.Model.CapFactor != ncc.DefaultCapFactor || c.Model.MaxWords != ncc.DefaultMaxWords || c.Model.MaxRounds != ncc.DefaultMaxRounds {
		t.Fatalf("canonical model %+v does not pin the engine defaults", c.Model)
	}
	if c.Model.Workers != 0 || c.Name != "" {
		t.Fatalf("canonical form retained non-semantic fields: %+v", c)
	}
}

func TestHashLegacyFaultsEqualModelSpecs(t *testing.T) {
	// The legacy flat knobs canonicalize to the fault-model specs they mean,
	// so either spelling shares one cache entry.
	legacy := mustHash(t, `{"algo":"bfs","graph":{"family":"grid"},"faults":{"dropprob":0.1,"dropto":[3,1],"fromround":5}}`)
	models := mustHash(t, `{"algo":"bfs","graph":{"family":"grid"},"faults":{"models":[{"model":"iid-drop","params":{"p":0.1}},{"model":"link-cut","params":{"fromround":5},"to":[1,3]}]}}`)
	if legacy != models {
		t.Fatal("legacy fault knobs and their model-spec form hash differently")
	}
	crash := mustHash(t, `{"algo":"bfs","graph":{"family":"grid"},"faults":{"models":[{"model":"crash","params":{"count":2,"round":10}}]}}`)
	if crash == models {
		t.Fatal("a crash schedule hashes like a drop schedule")
	}
	// The sweep faults axis is hash-relevant.
	plain := mustHash(t, `{"algo":"bfs","graph":{"family":"grid"}}`)
	swept := mustHash(t, `{"algo":"bfs","graph":{"family":"grid"},"sweep":{"faults":[{},{"models":[{"model":"crash"}]}]}}`)
	if plain == swept {
		t.Fatal("sweep faults axis did not change the hash")
	}
}
