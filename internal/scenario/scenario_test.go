package scenario

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ncc/internal/faultmodel"
	"ncc/internal/graph"
	"ncc/internal/param"
)

func misScenario() Scenario {
	return Scenario{
		Name:  "test-mis",
		Algo:  "mis",
		Graph: graph.Spec{Family: "kforest", Params: param.Values{"n": 24, "k": 2}, Seed: 5},
		Model: Model{Seed: 5},
	}
}

func TestRunOneProducesVerifiedRecord(t *testing.T) {
	rec, err := RunOne(misScenario(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Verified {
		t.Fatalf("unverified: %s", rec.VerifyErr)
	}
	if rec.Graph.N != 24 || rec.Graph.M == 0 {
		t.Errorf("graph info not recorded: %+v", rec.Graph)
	}
	if rec.Capacity == 0 || rec.Stats.Rounds == 0 {
		t.Errorf("capacity/stats not recorded: cap=%d rounds=%d", rec.Capacity, rec.Stats.Rounds)
	}
	if !strings.Contains(rec.Summary, "maximal independent set") {
		t.Errorf("summary = %q", rec.Summary)
	}
}

func TestExpandCrossProductIsDeterministic(t *testing.T) {
	s := misScenario()
	s.Sweep = &Sweep{N: []int{16, 32}, CapFactor: []int{4, 8}, Seeds: []int64{1, 2, 3}}
	got := s.Expand()
	if len(got) != 12 {
		t.Fatalf("expanded to %d scenarios, want 12", len(got))
	}
	// Deterministic order: n outermost, then capfactor, then seeds.
	first, last := got[0], got[11]
	if first.Graph.Params["n"] != 16 || first.Model.CapFactor != 4 || first.Model.Seed != 1 {
		t.Errorf("first expansion wrong: %+v", first)
	}
	if last.Graph.Params["n"] != 32 || last.Model.CapFactor != 8 || last.Model.Seed != 3 {
		t.Errorf("last expansion wrong: %+v", last)
	}
	if first.Graph.Seed != 1 || last.Graph.Seed != 3 {
		t.Errorf("sweep seeds must reseed the graph: first=%d last=%d", first.Graph.Seed, last.Graph.Seed)
	}
	for _, c := range got {
		if c.Sweep != nil {
			t.Fatal("expanded scenario still carries a sweep")
		}
	}
	// Expansion must not alias the parent's parameter bags.
	if s.Graph.Params["n"] != 24 {
		t.Errorf("expansion mutated the parent spec: n=%v", s.Graph.Params["n"])
	}
}

func TestExpandWithoutSeedsAxisKeepsDeclaredSeeds(t *testing.T) {
	s := misScenario()
	s.Graph.Seed = 7
	s.Model.Seed = 3
	s.Sweep = &Sweep{N: []int{16, 24}}
	for _, c := range s.Expand() {
		if c.Graph.Seed != 7 || c.Model.Seed != 3 {
			t.Errorf("empty seeds axis must keep declared seeds, got graph=%d model=%d",
				c.Graph.Seed, c.Model.Seed)
		}
	}
}

func TestRunSweepSerializesDeterministically(t *testing.T) {
	s := misScenario()
	s.Sweep = &Sweep{N: []int{12, 16}, Seeds: []int64{1, 2}}
	marshal := func() string {
		var b strings.Builder
		for _, rec := range Run(s) {
			line, err := json.Marshal(rec)
			if err != nil {
				t.Fatal(err)
			}
			b.Write(line)
			b.WriteByte('\n')
		}
		return b.String()
	}
	a, b := marshal(), marshal()
	if a != b {
		t.Errorf("two identical sweeps serialized differently:\n%s\n---\n%s", a, b)
	}
	if n := strings.Count(a, "\n"); n != 4 {
		t.Errorf("sweep produced %d records, want 4", n)
	}
	if strings.Contains(a, `"verified":false`) {
		t.Errorf("sweep contains unverified runs:\n%s", a)
	}
}

func TestValidateRejectsUnknowns(t *testing.T) {
	s := misScenario()
	s.Algo = "nope"
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), `unknown algorithm "nope"`) {
		t.Errorf("err = %v", err)
	}
	s = misScenario()
	s.Graph.Family = "nope"
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), `unknown graph family "nope"`) {
		t.Errorf("err = %v", err)
	}
	s = misScenario()
	s.Params = param.Values{"bogus": 1}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "unknown params") {
		t.Errorf("err = %v", err)
	}
}

func TestLoadRoundTripsAndRejectsUnknownFields(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	spec := `{
		"name": "file-mst",
		"algo": "mst",
		"graph": {"family": "gnm", "params": {"n": 20, "m": 40}, "seed": 3},
		"params": {"maxw": 100},
		"model": {"capfactor": 8, "seed": 3},
		"sweep": {"seeds": [3, 4]}
	}`
	if err := os.WriteFile(good, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Load(good)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	recs := Run(s)
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	for _, rec := range recs {
		if rec.Error != "" || !rec.Verified {
			t.Errorf("record failed: err=%q verifyErr=%q", rec.Error, rec.VerifyErr)
		}
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"algo": "mst", "grpah": {}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestFaultInjectionIsRecordedNotFatal(t *testing.T) {
	s := Scenario{
		Algo:   "mis",
		Graph:  graph.Spec{Family: "kforest", Params: param.Values{"n": 16, "k": 1}, Seed: 4},
		Model:  Model{Seed: 4, NonStrict: true, MaxRounds: 3000},
		Faults: &Faults{DropProb: 0.3},
	}
	recs := Run(s)
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	rec := recs[0]
	// A 30%-lossy network either stalls the collective (MaxRounds, recorded
	// in Error) or terminates with the drops visible in the stats; silent
	// success with zero drops would mean the faults were never injected.
	if rec.Error == "" && rec.Stats.DroppedFault == 0 {
		t.Errorf("fault injection left no trace: %+v", rec)
	}
}

func TestInterceptorFaults(t *testing.T) {
	f := &Faults{DropTo: []int{0}, FromRound: 5}
	plan, err := faultmodel.Build(f.specs(), faultmodel.Env{N: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ic := plan.Interceptor
	if ic == nil {
		t.Fatal("no interceptor compiled")
	}
	if !ic(4, 1, 0) {
		t.Error("dropped before FromRound")
	}
	if ic(5, 1, 0) {
		t.Error("kept a message to a dead node")
	}
	if !ic(5, 1, 2) {
		t.Error("dropped an unrelated message")
	}
}

func TestFaultValidationFieldPaths(t *testing.T) {
	cases := []struct {
		name string
		f    Faults
		want string
	}{
		{"negative fromround", Faults{FromRound: -1}, "faults.fromround = -1"},
		{"dropprob range", Faults{DropProb: 1.5}, "faults.dropprob = 1.5"},
		{"dropto bound", Faults{DropTo: []int{24}}, "faults.dropto[0] = 24 out of [0,24)"},
		{"dropfrom bound", Faults{DropFrom: []int{-1}}, "faults.dropfrom[0] = -1"},
		{"unknown model", Faults{Models: []faultmodel.Spec{{Model: "meteor"}}}, `faults.models[0]: model: unknown fault model "meteor"`},
		{"links on non-link model", Faults{Models: []faultmodel.Spec{{Model: "crash", To: []int{1}}}}, "faults.models[0]: model crash takes no to/from link sets"},
		{"link set bound", Faults{Models: []faultmodel.Spec{{Model: "link-cut", To: []int{30}}}}, "faults.models[0]: to[0] = 30 out of [0,24)"},
		{"bad model param", Faults{Models: []faultmodel.Spec{{Model: "crash", Params: param.Values{"rounds": 3}}}}, "faults.models[0]: params:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := misScenario()
			s.Faults = &tc.f
			err := s.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}

	s := misScenario()
	s.Sweep = &Sweep{Faults: []Faults{{}, {FromRound: -2}}}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "sweep.faults[1].fromround") {
		t.Fatalf("Validate() = %v, want sweep.faults[1].fromround path", err)
	}
}

func TestSweepFaultsAxis(t *testing.T) {
	s := misScenario()
	s.Sweep = &Sweep{Seeds: []int64{1, 2}, Faults: []Faults{{}, {DropProb: 0.1}}}
	ex := s.Expand()
	if len(ex) != 4 {
		t.Fatalf("expanded to %d scenarios, want 4", len(ex))
	}
	for i, c := range ex {
		wantDrop := 0.0
		if i%2 == 1 {
			wantDrop = 0.1
		}
		if c.Faults == nil || c.Faults.DropProb != wantDrop {
			t.Errorf("expansion %d: faults = %+v, want dropprob %v", i, c.Faults, wantDrop)
		}
		if c.Sweep != nil {
			t.Errorf("expansion %d still carries a sweep", i)
		}
	}
	if ex[0].Model.Seed != 1 || ex[2].Model.Seed != 2 {
		t.Errorf("seed axis must stay outside the faults axis: %+v", []int64{ex[0].Model.Seed, ex[2].Model.Seed})
	}
}

func TestCrashScenarioRecordsDegradation(t *testing.T) {
	s := Scenario{
		Algo:  "mis",
		Graph: graph.Spec{Family: "kforest", Params: param.Values{"n": 48, "k": 2}, Seed: 3},
		Model: Model{Seed: 11, MaxRounds: 1 << 17},
		Faults: &Faults{Models: []faultmodel.Spec{
			{Model: "crash", Params: param.Values{"count": 4, "round": 20}},
		}},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	rec, err := RunOne(s, nil)
	if err != nil {
		t.Fatalf("crashed run failed hard: %v", err)
	}
	if rec.Degradation == nil {
		t.Fatal("faulted record has no degradation report")
	}
	if rec.Verified {
		t.Error("degraded record must not claim full verification")
	}
	if !rec.Degradation.SurvivorsOK {
		t.Errorf("survivor verification failed: %s", rec.Degradation.Detail)
	}
	if rec.Degradation.Unfinished < 4 {
		t.Errorf("unfinished = %d, want >= 4", rec.Degradation.Unfinished)
	}
}

// TestFaultedRunsAreWorkerInvariant pins the reproducibility contract for
// every registered fault model: the full Record — stats, degradation report,
// survivor verdict — is byte-identical across engine worker counts and across
// repeated runs of the same seed (fault schedules derive from the run seed,
// never from execution order).
func TestFaultedRunsAreWorkerInvariant(t *testing.T) {
	blocks := []Faults{
		{Models: []faultmodel.Spec{{Model: "iid-drop", Params: param.Values{"p": 0.004}}}},
		{Models: []faultmodel.Spec{{Model: "link-cut", Params: param.Values{"fromround": 40}, To: []int{1}}}},
		{Models: []faultmodel.Spec{{Model: "crash", Params: param.Values{"count": 3, "round": 20}}}},
		{Models: []faultmodel.Spec{{Model: "crash-recover", Params: param.Values{"count": 2, "round": 16, "downfor": 48}}}},
		{Models: []faultmodel.Spec{{Model: "churn", Params: param.Values{"rate": 0.01, "horizon": 400, "meandown": 32}}}},
		{Models: []faultmodel.Spec{{Model: "adversarial", Params: param.Values{"count": 2, "round": 16}}}},
	}
	for i := range blocks {
		f := blocks[i]
		t.Run(f.Models[0].Model, func(t *testing.T) {
			t.Parallel()
			s := Scenario{
				Algo:   "mis",
				Graph:  graph.Spec{Family: "kforest", Params: param.Values{"n": 32, "k": 2}, Seed: 7},
				Model:  Model{Seed: 7, MaxRounds: 1 << 15},
				Faults: &f,
			}
			var runs [][]byte
			for _, workers := range []int{1, 3, 3} {
				rec, err := RunOneWith(s, RunOpts{Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if rec.Degradation == nil {
					t.Fatalf("workers=%d: faulted record has no degradation report", workers)
				}
				line, err := json.Marshal(rec)
				if err != nil {
					t.Fatal(err)
				}
				runs = append(runs, line)
			}
			if !bytes.Equal(runs[0], runs[1]) {
				t.Errorf("record differs across worker counts:\n1 worker:  %s\n3 workers: %s", runs[0], runs[1])
			}
			if !bytes.Equal(runs[1], runs[2]) {
				t.Errorf("record differs across repeated runs of one seed:\n%s\n%s", runs[1], runs[2])
			}
		})
	}
}
