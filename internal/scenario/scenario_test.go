package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ncc/internal/graph"
	"ncc/internal/param"
)

func misScenario() Scenario {
	return Scenario{
		Name:  "test-mis",
		Algo:  "mis",
		Graph: graph.Spec{Family: "kforest", Params: param.Values{"n": 24, "k": 2}, Seed: 5},
		Model: Model{Seed: 5},
	}
}

func TestRunOneProducesVerifiedRecord(t *testing.T) {
	rec, err := RunOne(misScenario(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Verified {
		t.Fatalf("unverified: %s", rec.VerifyErr)
	}
	if rec.Graph.N != 24 || rec.Graph.M == 0 {
		t.Errorf("graph info not recorded: %+v", rec.Graph)
	}
	if rec.Capacity == 0 || rec.Stats.Rounds == 0 {
		t.Errorf("capacity/stats not recorded: cap=%d rounds=%d", rec.Capacity, rec.Stats.Rounds)
	}
	if !strings.Contains(rec.Summary, "maximal independent set") {
		t.Errorf("summary = %q", rec.Summary)
	}
}

func TestExpandCrossProductIsDeterministic(t *testing.T) {
	s := misScenario()
	s.Sweep = &Sweep{N: []int{16, 32}, CapFactor: []int{4, 8}, Seeds: []int64{1, 2, 3}}
	got := s.Expand()
	if len(got) != 12 {
		t.Fatalf("expanded to %d scenarios, want 12", len(got))
	}
	// Deterministic order: n outermost, then capfactor, then seeds.
	first, last := got[0], got[11]
	if first.Graph.Params["n"] != 16 || first.Model.CapFactor != 4 || first.Model.Seed != 1 {
		t.Errorf("first expansion wrong: %+v", first)
	}
	if last.Graph.Params["n"] != 32 || last.Model.CapFactor != 8 || last.Model.Seed != 3 {
		t.Errorf("last expansion wrong: %+v", last)
	}
	if first.Graph.Seed != 1 || last.Graph.Seed != 3 {
		t.Errorf("sweep seeds must reseed the graph: first=%d last=%d", first.Graph.Seed, last.Graph.Seed)
	}
	for _, c := range got {
		if c.Sweep != nil {
			t.Fatal("expanded scenario still carries a sweep")
		}
	}
	// Expansion must not alias the parent's parameter bags.
	if s.Graph.Params["n"] != 24 {
		t.Errorf("expansion mutated the parent spec: n=%v", s.Graph.Params["n"])
	}
}

func TestExpandWithoutSeedsAxisKeepsDeclaredSeeds(t *testing.T) {
	s := misScenario()
	s.Graph.Seed = 7
	s.Model.Seed = 3
	s.Sweep = &Sweep{N: []int{16, 24}}
	for _, c := range s.Expand() {
		if c.Graph.Seed != 7 || c.Model.Seed != 3 {
			t.Errorf("empty seeds axis must keep declared seeds, got graph=%d model=%d",
				c.Graph.Seed, c.Model.Seed)
		}
	}
}

func TestRunSweepSerializesDeterministically(t *testing.T) {
	s := misScenario()
	s.Sweep = &Sweep{N: []int{12, 16}, Seeds: []int64{1, 2}}
	marshal := func() string {
		var b strings.Builder
		for _, rec := range Run(s) {
			line, err := json.Marshal(rec)
			if err != nil {
				t.Fatal(err)
			}
			b.Write(line)
			b.WriteByte('\n')
		}
		return b.String()
	}
	a, b := marshal(), marshal()
	if a != b {
		t.Errorf("two identical sweeps serialized differently:\n%s\n---\n%s", a, b)
	}
	if n := strings.Count(a, "\n"); n != 4 {
		t.Errorf("sweep produced %d records, want 4", n)
	}
	if strings.Contains(a, `"verified":false`) {
		t.Errorf("sweep contains unverified runs:\n%s", a)
	}
}

func TestValidateRejectsUnknowns(t *testing.T) {
	s := misScenario()
	s.Algo = "nope"
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), `unknown algorithm "nope"`) {
		t.Errorf("err = %v", err)
	}
	s = misScenario()
	s.Graph.Family = "nope"
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), `unknown graph family "nope"`) {
		t.Errorf("err = %v", err)
	}
	s = misScenario()
	s.Params = param.Values{"bogus": 1}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "unknown params") {
		t.Errorf("err = %v", err)
	}
}

func TestLoadRoundTripsAndRejectsUnknownFields(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	spec := `{
		"name": "file-mst",
		"algo": "mst",
		"graph": {"family": "gnm", "params": {"n": 20, "m": 40}, "seed": 3},
		"params": {"maxw": 100},
		"model": {"capfactor": 8, "seed": 3},
		"sweep": {"seeds": [3, 4]}
	}`
	if err := os.WriteFile(good, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Load(good)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	recs := Run(s)
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	for _, rec := range recs {
		if rec.Error != "" || !rec.Verified {
			t.Errorf("record failed: err=%q verifyErr=%q", rec.Error, rec.VerifyErr)
		}
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"algo": "mst", "grpah": {}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestFaultInjectionIsRecordedNotFatal(t *testing.T) {
	s := Scenario{
		Algo:   "mis",
		Graph:  graph.Spec{Family: "kforest", Params: param.Values{"n": 16, "k": 1}, Seed: 4},
		Model:  Model{Seed: 4, NonStrict: true, MaxRounds: 3000},
		Faults: &Faults{DropProb: 0.3},
	}
	recs := Run(s)
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	rec := recs[0]
	// A 30%-lossy network either stalls the collective (MaxRounds, recorded
	// in Error) or terminates with the drops visible in the stats; silent
	// success with zero drops would mean the faults were never injected.
	if rec.Error == "" && rec.Stats.DroppedFault == 0 {
		t.Errorf("fault injection left no trace: %+v", rec)
	}
}

func TestInterceptorFaults(t *testing.T) {
	f := &Faults{DropTo: []int{0}, FromRound: 5}
	ic := f.interceptor()
	if ic == nil {
		t.Fatal("no interceptor compiled")
	}
	if !ic(4, 1, 0) {
		t.Error("dropped before FromRound")
	}
	if ic(5, 1, 0) {
		t.Error("kept a message to a dead node")
	}
	if !ic(5, 1, 2) {
		t.Error("dropped an unrelated message")
	}
}
