package scenario

import (
	"reflect"
	"strings"
	"testing"

	"ncc/internal/graph"
	"ncc/internal/graphio"
	"ncc/internal/param"
)

func TestValidateFieldPaths(t *testing.T) {
	fakeHash := strings.Repeat("ab", 32)
	cases := []struct {
		name string
		s    Scenario
		want string // substring of the error; "" means valid
	}{
		{
			name: "file family without a reference",
			s:    Scenario{Algo: "mis", Graph: graph.Spec{Family: "file"}},
			want: "graph.file: required",
		},
		{
			name: "file family with a malformed reference",
			s:    Scenario{Algo: "mis", Graph: graph.Spec{Family: "file", File: "nope"}},
			want: "graph.file: \"nope\" is not a 64-hex content hash",
		},
		{
			name: "file family with a well-formed reference",
			s:    Scenario{Algo: "mis", Graph: graph.Spec{Family: "file", File: fakeHash}},
		},
		{
			name: "file reference on a generator family",
			s:    Scenario{Algo: "mis", Graph: graph.Spec{Family: "kforest", File: fakeHash}},
			want: "graph.file: only valid for the file family",
		},
		{
			name: "unknown capacity policy",
			s: Scenario{Algo: "mis", Graph: graph.Spec{Family: "kforest"},
				Capacities: &graph.CapacitySpec{Policy: "bogus"}},
			want: `capacities.policy "bogus" unknown`,
		},
		{
			name: "unknown capacity policy param",
			s: Scenario{Algo: "mis", Graph: graph.Spec{Family: "kforest"},
				Capacities: &graph.CapacitySpec{Policy: "degree", Params: param.Values{"wat": 1}}},
			want: "capacities.params",
		},
		{
			name: "explicit values length vs static n",
			s: Scenario{Algo: "mis", Graph: graph.Spec{Family: "kforest", Params: param.Values{"n": 8}},
				Capacities: &graph.CapacitySpec{Policy: "explicit", Values: []float64{4, 4, 4}}},
			want: "capacities.values: 3 entries for 8 nodes",
		},
		{
			name: "explicit values pass when n is not statically known",
			s: Scenario{Algo: "mis", Graph: graph.Spec{Family: "file", File: fakeHash},
				Capacities: &graph.CapacitySpec{Policy: "explicit", Values: []float64{4, 4, 4}}},
		},
		{
			name: "valid degree capacities",
			s: Scenario{Algo: "mis", Graph: graph.Spec{Family: "kforest", Params: param.Values{"n": 8}},
				Capacities: &graph.CapacitySpec{Policy: "degree", Params: param.Values{"min": 2}}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.s.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Validate: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestHashCapacitiesAndFile(t *testing.T) {
	base := `{"algo":"mis","graph":{"family":"kforest","params":{"n":32,"k":2},"seed":1},"model":{"seed":1}}`
	want := mustHash(t, base)

	// Spelling the uniform policy out loud is the same computation.
	uniform := `{"algo":"mis","graph":{"family":"kforest","params":{"n":32,"k":2},"seed":1},"model":{"seed":1},"capacities":{"policy":"uniform"}}`
	if got := mustHash(t, uniform); got != want {
		t.Errorf("explicit uniform capacities changed the hash: %s != %s", got, want)
	}

	// A real heterogeneous block is a different computation.
	degree := `{"algo":"mis","graph":{"family":"kforest","params":{"n":32,"k":2},"seed":1},"model":{"seed":1},"capacities":{"policy":"degree"}}`
	dh := mustHash(t, degree)
	if dh == want {
		t.Error("degree capacities did not change the hash")
	}
	// ... but spelling its default parameter is not.
	degreeMin := `{"algo":"mis","graph":{"family":"kforest","params":{"n":32,"k":2},"seed":1},"model":{"seed":1},"capacities":{"policy":"degree","params":{"min":0}}}`
	if got := mustHash(t, degreeMin); got != dh {
		t.Errorf("explicit default min changed the degree hash: %s != %s", got, dh)
	}

	// The graph content address is part of the canonical hash: two file
	// scenarios that differ only in the referenced bytes hash differently,
	// and the reference survives canonicalization verbatim.
	refA, refB := strings.Repeat("aa", 32), strings.Repeat("bb", 32)
	fileA := `{"algo":"mis","graph":{"family":"file","file":"` + refA + `"},"model":{"seed":1}}`
	fileB := `{"algo":"mis","graph":{"family":"file","file":"` + refB + `"},"model":{"seed":1}}`
	if mustHash(t, fileA) == mustHash(t, fileB) {
		t.Error("graph file reference is not part of the canonical hash")
	}
	sa, err := Decode([]byte(fileA))
	if err != nil {
		t.Fatal(err)
	}
	ca, err := sa.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if ca.Graph.File != refA {
		t.Errorf("canonical file ref = %q, want %q", ca.Graph.File, refA)
	}

	// A stray file on a generator family is cleared by canonicalization (it
	// is rejected by Validate, but hashing is independent of validation).
	strayA := Scenario{Algo: "mis", Graph: graph.Spec{Family: "kforest", Params: param.Values{"n": 32}, File: refA}}
	cs, err := strayA.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Graph.File != "" {
		t.Errorf("generator-family file ref survived canonicalization: %q", cs.Graph.File)
	}
}

// TestRunOneFileFamilyWithCapacities drives the whole chain: ingest a graph
// into a store, reference it from a scenario by content hash, scale per-node
// capacities off its degrees, and check the Record reports the heterogeneous
// run. The file-family record must agree with the same computation run
// through the generator family.
func TestRunOneFileFamilyWithCapacities(t *testing.T) {
	graphio.SetStoreDir(t.TempDir())
	spec := graph.Spec{Family: "pa", Params: param.Values{"n": 96, "k": 2}, Seed: 5}
	g, err := graph.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	st, err := graphio.ActiveStore()
	if err != nil {
		t.Fatal(err)
	}
	hash, err := st.PutGraph(g)
	if err != nil {
		t.Fatal(err)
	}

	caps := &graph.CapacitySpec{Policy: "degree"}
	fileScen := Scenario{Algo: "mis", Graph: graph.Spec{Family: "file", File: hash}, Model: Model{Seed: 3}, Capacities: caps}
	if err := fileScen.Validate(); err != nil {
		t.Fatal(err)
	}
	genScen := Scenario{Algo: "mis", Graph: spec, Model: Model{Seed: 3}, Capacities: caps}

	recFile, err := RunOne(fileScen, nil)
	if err != nil {
		t.Fatal(err)
	}
	recGen, err := RunOne(genScen, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !recFile.Verified {
		t.Errorf("file-family run not verified: %s", recFile.VerifyErr)
	}
	if recFile.CapMin == 0 || recFile.CapMax < recFile.CapMin {
		t.Errorf("CapMin/CapMax = %d/%d, want a heterogeneous range", recFile.CapMin, recFile.CapMax)
	}
	if recFile.Stats.CapUtilMax <= 0 {
		t.Errorf("CapUtilMax = %v, want > 0 on a heterogeneous run", recFile.Stats.CapUtilMax)
	}
	// Identical computation: everything but the scenario echo must agree.
	recFile.Scenario, recGen.Scenario = Scenario{}, Scenario{}
	if !reflect.DeepEqual(recFile, recGen) {
		t.Errorf("file vs generator records diverge:\nfile %+v\ngen  %+v", recFile, recGen)
	}

	// Uniform policy leaves the record homogeneous.
	uni := Scenario{Algo: "mis", Graph: spec, Model: Model{Seed: 3}, Capacities: &graph.CapacitySpec{Policy: "uniform"}}
	recUni, err := RunOne(uni, nil)
	if err != nil {
		t.Fatal(err)
	}
	if recUni.CapMin != 0 || recUni.CapMax != 0 || recUni.Stats.CapUtilMax != 0 {
		t.Errorf("uniform run reported heterogeneous fields: %+v", recUni)
	}
}
