package scenario

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
	"strings"
)

// Decode parses one Scenario from JSON with strict field checking: an unknown
// field anywhere in the document — scenario, graph, model, faults, sweep — is
// rejected with its full path and the accepted field names, so a typo like
// "capfator" fails loudly instead of silently running defaults. Parameter
// *names* inside the params bags are free-form here; Validate checks them
// against the registries (which produce their own unknown-param errors).
func Decode(data []byte) (Scenario, error) {
	var s Scenario
	if err := strictInto(data, &s, "scenario"); err != nil {
		return s, err
	}
	return s, nil
}

// StrictUnmarshal is json.Unmarshal with the same strict field checking
// Decode applies to scenarios, reusable for any spec document built from
// struct/slice/map shapes (the campaign spec embeds scenarios and shares the
// field-path error style). v must be a non-nil pointer to a struct; the
// lowercased struct name labels top-level unknown fields.
func StrictUnmarshal(data []byte, v any) error {
	t := reflect.TypeOf(v)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return strictInto(data, v, strings.ToLower(t.Name()))
}

func strictInto(data []byte, v any, root string) error {
	t := reflect.TypeOf(v)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	if err := checkFields(data, t, root, ""); err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// checkFields walks raw against the JSON shape of t and reports the first
// unknown object key with its dotted path (root labels the whole document
// when the offender is top-level). Maps (the param bags) accept any keys;
// slices of structs are checked element-wise. Type mismatches are left for
// json.Unmarshal, whose errors already carry the Go type context.
func checkFields(raw json.RawMessage, t reflect.Type, root, path string) error {
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	switch t.Kind() {
	case reflect.Struct:
		var m map[string]json.RawMessage
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil // not an object (null, or a mismatch json.Unmarshal will report)
		}
		fields := jsonFields(t)
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys) // deterministic first error
		for _, key := range keys {
			ft, ok := fields[strings.ToLower(key)]
			if !ok {
				known := make([]string, 0, len(fields))
				for name := range fields {
					known = append(known, name)
				}
				sort.Strings(known)
				return fmt.Errorf("unknown field %q (%s has %s)",
					joinPath(path, key), pathName(root, path), strings.Join(known, ", "))
			}
			if err := checkFields(m[key], ft, root, joinPath(path, key)); err != nil {
				return err
			}
		}
	case reflect.Slice, reflect.Array:
		et := t.Elem()
		for et.Kind() == reflect.Pointer {
			et = et.Elem()
		}
		if et.Kind() != reflect.Struct {
			return nil
		}
		var elems []json.RawMessage
		if err := json.Unmarshal(raw, &elems); err != nil {
			return nil
		}
		for i, e := range elems {
			if err := checkFields(e, et, root, fmt.Sprintf("%s[%d]", path, i)); err != nil {
				return err
			}
		}
	}
	return nil
}

// jsonFields maps the lowercased JSON names of t's fields to their types,
// mirroring encoding/json's case-insensitive matching.
func jsonFields(t reflect.Type) map[string]reflect.Type {
	out := make(map[string]reflect.Type, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		name := f.Name
		if tag, ok := f.Tag.Lookup("json"); ok {
			tagName, _, _ := strings.Cut(tag, ",")
			if tagName == "-" {
				continue
			}
			if tagName != "" {
				name = tagName
			}
		}
		out[strings.ToLower(name)] = f.Type
	}
	return out
}

func joinPath(path, key string) string {
	if path == "" {
		return key
	}
	return path + "." + key
}

func pathName(root, path string) string {
	if path == "" {
		return root
	}
	return path
}
