package scenario

import (
	"bytes"
	"testing"

	"ncc/internal/obs"
)

// TestRunTracedProducesValidTrace runs a sweep through one collector and
// checks the sealed trace parses, covers every run, and carries the scenario
// identity.
func TestRunTracedProducesValidTrace(t *testing.T) {
	s := misScenario()
	s.Sweep = &Sweep{Seeds: []int64{1, 2}}
	col := &obs.Collector{}
	cases := s.Expand()
	for _, c := range cases {
		if _, err := RunTraced(c, col, RunOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := obs.Parse(bytes.NewReader(col.Bytes()))
	if err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	if len(tr.Runs) != len(cases) {
		t.Fatalf("trace has %d runs for %d scenarios", len(tr.Runs), len(cases))
	}
	for i, run := range tr.Runs {
		wantHash, _ := cases[i].Hash()
		if run.Header.Scenario != wantHash {
			t.Errorf("run %d: scenario hash %q, want %q", i, run.Header.Scenario, wantHash)
		}
		if run.Header.Algo != "mis" || run.Header.N != 24 {
			t.Errorf("run %d header = %+v", i, run.Header)
		}
		if len(run.Rounds) == 0 || run.End.Failed {
			t.Errorf("run %d: %d rounds, failed=%v", i, len(run.Rounds), run.End.Failed)
		}
	}
}

// TestRunTracedWorkerInvariant pins the property the whole trace plane rests
// on: the trace bytes are identical at any worker count.
func TestRunTracedWorkerInvariant(t *testing.T) {
	traceAt := func(workers int) []byte {
		col := &obs.Collector{}
		if _, err := RunTraced(misScenario(), col, RunOpts{Workers: workers}); err != nil {
			t.Fatal(err)
		}
		return col.Bytes()
	}
	base := traceAt(1)
	for _, w := range []int{2, 7} {
		if got := traceAt(w); !bytes.Equal(got, base) {
			t.Errorf("trace bytes diverge at workers=%d", w)
		}
	}
}

// TestRunTracedSkipsUnrunnableScenario: a scenario that fails before its
// graph exists must not seal a bogus segment.
func TestRunTracedSkipsUnrunnableScenario(t *testing.T) {
	s := misScenario()
	s.Algo = "no-such-algo"
	col := &obs.Collector{}
	if _, err := RunTraced(s, col, RunOpts{}); err == nil {
		t.Fatal("want error for unknown algo")
	}
	if lines := col.Lines(); len(lines) != 0 {
		t.Errorf("unrunnable scenario sealed %d trace lines", len(lines))
	}
}
