// Package hashing provides the shared-randomness hash functions the paper's
// communication primitives rely on: k-wise independent families realized as
// degree-(k-1) polynomials over GF(p) with the Mersenne prime p = 2^61-1, and
// a fast seed-derivation mixer (splitmix64) used to expand the O(log^2 n)
// broadcast random bits into the per-invocation functions (a standard
// substitution for the paper's abstract shared-randomness assumption).
package hashing

import "math/bits"

// Prime is the Mersenne prime 2^61 - 1 underlying the polynomial family.
const Prime uint64 = (1 << 61) - 1

// Family is a k-wise independent hash function h: uint64 -> [0, Prime).
// A Family with k coefficients is k-wise independent over inputs reduced
// modulo Prime.
type Family struct {
	coeffs []uint64 // degree k-1 polynomial, little-endian (coeffs[0] is constant)
}

// NewFamily builds a k-wise independent function from a stream of seed words
// (as produced by SeedStream). k must be >= 1.
func NewFamily(k int, seed *SeedStream) *Family {
	if k < 1 {
		panic("hashing: family needs k >= 1")
	}
	cs := make([]uint64, k)
	for i := range cs {
		cs[i] = seed.Next() % Prime
	}
	return &Family{coeffs: cs}
}

// K returns the independence parameter of the family.
func (f *Family) K() int { return len(f.coeffs) }

// Reseed refills the family's coefficients in place from the stream, keeping
// k. It lets callers that derive a fresh function per collective invocation
// pool the family storage instead of allocating each time.
func (f *Family) Reseed(seed *SeedStream) {
	for i := range f.coeffs {
		f.coeffs[i] = seed.Next() % Prime
	}
}

// Hash evaluates the polynomial at x and returns a value in [0, Prime).
func (f *Family) Hash(x uint64) uint64 {
	x %= Prime
	var acc uint64
	for i := len(f.coeffs) - 1; i >= 0; i-- {
		acc = addMod(mulMod(acc, x), f.coeffs[i])
	}
	return acc
}

// Range maps x to [0, m). The bias is at most m/Prime, negligible for the
// ranges used here (m << 2^61).
func (f *Family) Range(x, m uint64) uint64 {
	if m == 0 {
		panic("hashing: Range with m = 0")
	}
	return f.Hash(x) % m
}

// Bit maps x to a single unbiased-up-to-1/Prime bit.
func (f *Family) Bit(x uint64) uint64 { return f.Hash(x) & 1 }

// mulMod multiplies modulo the Mersenne prime 2^61-1 using the identity
// 2^64 = 8 (mod p).
func mulMod(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a, b < 2^61, so hi < 2^58 and hi*8 < 2^61.
	r := (lo & Prime) + (lo >> 61) + hi*8
	for r >= Prime {
		r -= Prime
	}
	return r
}

func addMod(a, b uint64) uint64 {
	r := a + b // a, b < 2^61: no overflow
	if r >= Prime {
		r -= Prime
	}
	return r
}

// SeedStream deterministically expands a small shared seed into an unbounded
// stream of pseudo-random words via splitmix64. Two streams built from the
// same words and salt produce identical output, which is how every node of
// the clique derives identical hash functions from the broadcast seed.
type SeedStream struct {
	state uint64
}

// NewSeedStream folds the shared words and a salt into a stream.
func NewSeedStream(words []uint64, salt uint64) *SeedStream {
	s := StreamFrom(words, salt)
	return &s
}

// StreamFrom is NewSeedStream by value, for callers that keep the stream on
// the stack (allocation-free derivation of pooled families).
func StreamFrom(words []uint64, salt uint64) SeedStream {
	s := salt
	for _, w := range words {
		s = Mix(s ^ Mix(w))
	}
	return SeedStream{state: s}
}

// Next returns the next word of the stream.
func (s *SeedStream) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return Mix(s.state)
}

// Mix is the splitmix64 finalizer: a bijective mixer with good avalanche.
func Mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// PackEdge encodes a directed edge (u, v) of a graph on up to 2^31 nodes as a
// single word, suitable for hashing and XOR sketching.
func PackEdge(u, v int) uint64 {
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// UnpackEdge inverts PackEdge.
func UnpackEdge(e uint64) (u, v int) {
	return int(e >> 32), int(uint32(e))
}

// PackUndirected encodes the undirected edge {u, v} canonically (smaller
// endpoint first).
func PackUndirected(u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return PackEdge(u, v)
}
