package hashing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMulModAgainstBigArithmetic(t *testing.T) {
	check := func(a, b uint64) bool {
		a %= Prime
		b %= Prime
		got := mulMod(a, b)
		// Reference via 128-bit decomposition: (a*b) mod p computed with
		// math/big-free splitting a = a1*2^31 + a0.
		a1, a0 := a>>31, a&((1<<31)-1)
		// a*b = a1*2^31*b + a0*b. Reduce pieces mod p step by step.
		t1 := mulModSlow(a1, b)
		t1 = mulModSlow(t1, 1<<31)
		t0 := mulModSlow(a0, b)
		want := (t1 + t0) % Prime
		return got == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// mulModSlow multiplies mod Prime by Russian-peasant doubling (reference).
func mulModSlow(a, b uint64) uint64 {
	a %= Prime
	b %= Prime
	var r uint64
	for b > 0 {
		if b&1 == 1 {
			r = (r + a) % Prime
		}
		a = (a * 2) % Prime
		b >>= 1
	}
	return r
}

func TestFamilyDeterministicAcrossNodes(t *testing.T) {
	words := []uint64{1, 2, 3, 4}
	f1 := NewFamily(8, NewSeedStream(words, 77))
	f2 := NewFamily(8, NewSeedStream(words, 77))
	for x := uint64(0); x < 100; x++ {
		if f1.Hash(x) != f2.Hash(x) {
			t.Fatalf("same seed produced different functions at x=%d", x)
		}
	}
	f3 := NewFamily(8, NewSeedStream(words, 78))
	same := 0
	for x := uint64(0); x < 100; x++ {
		if f1.Hash(x) == f3.Hash(x) {
			same++
		}
	}
	if same > 5 {
		t.Errorf("different salts collide on %d/100 inputs", same)
	}
}

func TestBitIsRoughlyUnbiased(t *testing.T) {
	f := NewFamily(16, NewSeedStream([]uint64{42}, 1))
	ones := 0
	const trials = 20000
	for x := 0; x < trials; x++ {
		ones += int(f.Bit(uint64(x)))
	}
	frac := float64(ones) / trials
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("bit bias: fraction of ones = %v", frac)
	}
}

func TestRangeIsRoughlyUniform(t *testing.T) {
	f := NewFamily(16, NewSeedStream([]uint64{7, 8}, 2))
	const m = 16
	const trials = 32000
	var buckets [m]int
	for x := 0; x < trials; x++ {
		buckets[f.Range(uint64(x), m)]++
	}
	want := float64(trials) / m
	for i, b := range buckets {
		if math.Abs(float64(b)-want) > 0.15*want {
			t.Errorf("bucket %d has %d entries, want about %v", i, b, want)
		}
	}
}

// Pairwise independence spot check: for a family with k >= 2, the joint
// distribution of (h(x), h(y)) over random coefficient choices should be
// close to uniform on pairs. We approximate by varying the seed.
func TestPairwiseIndependenceSpotCheck(t *testing.T) {
	const trials = 4000
	matches := 0
	for s := 0; s < trials; s++ {
		f := NewFamily(2, NewSeedStream([]uint64{uint64(s)}, 0))
		if f.Range(12345, 8) == f.Range(54321, 8) {
			matches++
		}
	}
	frac := float64(matches) / trials
	if math.Abs(frac-1.0/8) > 0.03 {
		t.Errorf("P[h(x)=h(y)] = %v, want about 1/8", frac)
	}
}

func TestPackEdge(t *testing.T) {
	check := func(u32, v32 uint32) bool {
		u, v := int(u32>>1), int(v32>>1)
		gu, gv := UnpackEdge(PackEdge(u, v))
		if gu != u || gv != v {
			return false
		}
		return PackUndirected(u, v) == PackUndirected(v, u)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestSeedStreamDiffers(t *testing.T) {
	s := NewSeedStream([]uint64{1}, 0)
	a, b := s.Next(), s.Next()
	if a == b {
		t.Error("consecutive stream words equal")
	}
}
