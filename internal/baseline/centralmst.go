package baseline

import (
	"ncc/internal/comm"
	"ncc/internal/graph"
	"ncc/internal/ncc"
	"ncc/internal/seq"
)

// dtagEdge tags the gathered weighted edges: word 0 packs the tag and both
// endpoints, word 1 the weight. Shipped through the engine's inline word
// paths like all session traffic.
const dtagEdge uint64 = comm.DirectTagMin + 0x11

// CentralizedMST is the gather-and-solve baseline: every node ships its
// incident edges to node 0 (spread over a randomized window; node 0's
// receive capacity makes this Theta(m / log n) rounds), node 0 runs Kruskal
// locally and pipelines the forest edges back through the butterfly.
// Returns the full forest at every node. The crossover against the
// distributed MST's O(log^4 n) rounds is experiment T1-MST's ablation.
func CentralizedMST(s *comm.Session, wg *graph.Weighted) [][2]int {
	ctx := s.Ctx
	me := ctx.ID()
	capacity := ctx.MinCap()
	// The gather wire format packs both edge endpoints into 24 bits each of
	// one header word; beyond 2^24 nodes the ids would silently wrap.
	if ctx.N() > 1<<24 {
		panic("baseline: CentralizedMST edge encoding caps n at 2^24")
	}

	// Count edges globally (each edge counted at its smaller endpoint).
	local := 0
	for _, v := range wg.Neighbors(me) {
		if int(v) > me {
			local++
		}
	}
	mU, _ := s.SumCount(uint64(local), true)
	m := int(mU)

	// Gather at node 0.
	window := 2*(m+capacity-1)/capacity + 4
	type job struct {
		at   int
		u, v int32
		w    int64
	}
	var jobs []job
	if me != 0 {
		for _, v32 := range wg.Neighbors(me) {
			v := int(v32)
			if v > me {
				jobs = append(jobs, job{
					at: ctx.Rand().IntN(window),
					u:  int32(me), v: int32(v), w: wg.Weight(me, v),
				})
			}
		}
	}
	var edges []seq.Edge
	if me == 0 {
		for _, v32 := range wg.Neighbors(0) {
			v := int(v32)
			if v > 0 {
				edges = append(edges, seq.Edge{U: 0, V: v, W: wg.Weight(0, v)})
			}
		}
	}
	for t := 0; t < window; t++ {
		for _, j := range jobs {
			if j.at == t {
				ctx.SendWords2(0, ncc.Words2{
					dtagEdge<<56 | uint64(uint32(j.u)&0xFFFFFF)<<24 | uint64(uint32(j.v)&0xFFFFFF),
					uint64(j.w),
				})
			}
		}
		s.Advance()
		s.DrainDirect(func(from ncc.NodeID, ws []uint64) {
			if me == 0 && ws[0]>>56 == dtagEdge {
				edges = append(edges, seq.Edge{
					U: int(ws[0] >> 24 & 0xFFFFFF),
					V: int(ws[0] & 0xFFFFFF),
					W: int64(ws[1]),
				})
			}
		})
	}

	// Solve locally at node 0.
	var forest [][2]int
	var words []uint64
	if me == 0 {
		b := graph.NewBuilder(ctx.N())
		for _, e := range edges {
			b.AddEdge(e.U, e.V)
		}
		sub := graph.NewWeighted(b.Build())
		for _, e := range edges {
			sub.SetWeight(e.U, e.V, e.W)
		}
		mst, _ := seq.MSTKruskal(sub)
		for _, e := range mst {
			forest = append(forest, [2]int{e.U, e.V})
			words = append(words, uint64(e.U)<<32|uint64(e.V))
		}
	}

	// Announce the forest size, then pipeline the edges to everyone.
	sizeW := s.BroadcastWords(0, []uint64{uint64(len(words))}, 1)
	size := int(sizeW[0])
	edgeWords := s.BroadcastWords(0, words, size)
	if me != 0 {
		for _, w := range edgeWords {
			forest = append(forest, [2]int{int(w >> 32), int(uint32(w))})
		}
	}
	return forest
}
