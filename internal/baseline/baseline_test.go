package baseline

import (
	"sync"
	"testing"

	"ncc/internal/comm"
	"ncc/internal/graph"
	"ncc/internal/ncc"
	"ncc/internal/verify"
)

func TestDirectBroadcastDeliversEverywhere(t *testing.T) {
	const n = 60
	got := make([]uint64, n)
	cfg := ncc.Config{N: n, Seed: 1, Strict: true}
	st, err := ncc.Run(cfg, func(ctx *ncc.Context) {
		got[ctx.ID()] = DirectBroadcast(ctx, 3, 777)
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, v := range got {
		if v != 777 {
			t.Fatalf("node %d got %d", id, v)
		}
	}
	// Theta(n/cap) rounds.
	want := (n - 1 + cfg.Cap() - 1) / cfg.Cap()
	if st.Rounds != want {
		t.Errorf("rounds = %d, want %d", st.Rounds, want)
	}
}

func TestButterflyBroadcastBeatsDirectOnRounds(t *testing.T) {
	// The O(log n) vs Theta(n/cap) separation appears once n/cap clears the
	// butterfly's constant factors (session setup included).
	const n = 2048
	cfg := ncc.Config{N: n, CapFactor: 1, Seed: 1, Strict: true}
	stDirect, err := ncc.Run(cfg, func(ctx *ncc.Context) {
		DirectBroadcast(ctx, 0, 9)
	})
	if err != nil {
		t.Fatal(err)
	}
	stBF, err := ncc.Run(cfg, func(ctx *ncc.Context) {
		s := comm.NewSession(ctx)
		if got := ButterflyBroadcast(s, 0, 9); got != 9 {
			panic("broadcast value lost")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Session setup is itself O(log n), so the total stays far below n/cap.
	if stBF.Rounds >= stDirect.Rounds {
		t.Errorf("butterfly broadcast (%d rounds) not faster than direct (%d rounds)",
			stBF.Rounds, stDirect.Rounds)
	}
}

func TestGossipChecksum(t *testing.T) {
	const n = 40
	got := make([]uint64, n)
	cfg := ncc.Config{N: n, Seed: 2, Strict: true}
	st, err := ncc.Run(cfg, func(ctx *ncc.Context) {
		got[ctx.ID()] = Gossip(ctx, uint64(ctx.ID()+1))
	})
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(n * (n + 1) / 2)
	for id, v := range got {
		if v != want {
			t.Fatalf("node %d gossip checksum %d, want %d", id, v, want)
		}
	}
	if st.Dropped() != 0 {
		t.Errorf("gossip dropped %d messages", st.Dropped())
	}
	// Theta(n/cap) rounds: the Section 1 bound.
	want2 := (n - 1 + cfg.Cap() - 1) / cfg.Cap()
	if st.Rounds != want2 {
		t.Errorf("rounds = %d, want %d", st.Rounds, want2)
	}
}

func TestNaiveBFSCorrect(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"grid": graph.Grid(5, 6), "star": graph.Star(20), "tree": graph.BinaryTree(25),
	} {
		var mu sync.Mutex
		dist := make([]int, g.N())
		parent := make([]int, g.N())
		cfg := ncc.Config{N: g.N(), Seed: 5, Strict: true}
		_, err := ncc.Run(cfg, func(ctx *ncc.Context) {
			s := comm.NewSession(ctx)
			d, p := NaiveBFS(s, g, 0)
			mu.Lock()
			dist[ctx.ID()], parent[ctx.ID()] = d, p
			mu.Unlock()
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := verify.BFS(g, 0, dist, parent, true); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestNaiveTreeSetupStarCost(t *testing.T) {
	// The paper's Section 5 motivation: on a star, naive setup pays for the
	// center's degree, while the orientation-based setup stays logarithmic.
	// Here we only check the naive path works and yields usable trees.
	g := graph.Star(32)
	counts := make([]int, g.N())
	var mu sync.Mutex
	cfg := ncc.Config{N: g.N(), Seed: 3, Strict: true}
	_, err := ncc.Run(cfg, func(ctx *ncc.Context) {
		s := comm.NewSession(ctx)
		trees := NaiveTreeSetup(s, g)
		got := comm.Multicast(s, trees, true, uint64(ctx.ID()), uint64(ctx.ID()), comm.U64Wire{}, g.MaxDegree())
		mu.Lock()
		counts[ctx.ID()] = len(got)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != g.Degree(0) {
		t.Errorf("center received %d multicasts, want %d", counts[0], g.Degree(0))
	}
	for v := 1; v < g.N(); v++ {
		if counts[v] != 1 {
			t.Errorf("leaf %d received %d multicasts, want 1", v, counts[v])
		}
	}
}

func TestCentralizedMSTMatchesKruskal(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Grid(4, 5), graph.KForest(30, 2, 7), graph.GNP(24, 0.3, 1), graph.Disjoint(3, 5),
	} {
		wg := graph.RandomWeights(g, 500, 11)
		results := make([][][2]int, g.N())
		var mu sync.Mutex
		cfg := ncc.Config{N: g.N(), Seed: 9, Strict: true}
		_, err := ncc.Run(cfg, func(ctx *ncc.Context) {
			s := comm.NewSession(ctx)
			f := CentralizedMST(s, wg)
			mu.Lock()
			results[ctx.ID()] = f
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		// Every node holds the same full forest, and it is the MST.
		for u := 1; u < g.N(); u++ {
			if len(results[u]) != len(results[0]) {
				t.Fatalf("node %d has %d edges, node 0 has %d", u, len(results[u]), len(results[0]))
			}
		}
		if err := verify.MST(wg, results[0]); err != nil {
			t.Fatalf("%v: %v", g, err)
		}
	}
}
