package baseline

import (
	"ncc/internal/comm"
	"ncc/internal/graph"
	"ncc/internal/ncc"
)

// dtagPlainEdge tags gathered unweighted edges: one word packs the tag and
// both endpoints (24 bits each), half the traffic of the weighted gather.
const dtagPlainEdge uint64 = comm.DirectTagMin + 0x12

// CentralizedSolve is the generic gather-and-solve baseline: every node ships
// its incident edges to node 0 (spread over a randomized window; node 0's
// receive capacity makes this Theta(m / log n) rounds), node 0 rebuilds the
// graph and runs solve locally, and the per-node answers are pipelined back
// through the butterfly (another Theta(n / log n) rounds). Each node returns
// its own answer word. solve runs at node 0 only and must return exactly one
// word per node; it is the sequential reference the paper's polylog
// algorithms (MIS, coloring, ...) are measured against.
func CentralizedSolve(s *comm.Session, g *graph.Graph, solve func(g *graph.Graph) []uint64) uint64 {
	ctx := s.Ctx
	me := ctx.ID()
	capacity := ctx.MinCap()
	n := ctx.N()
	// The gather wire format packs both edge endpoints into 24 bits each of
	// one word; beyond 2^24 nodes the ids would silently wrap.
	if n > 1<<24 {
		panic("baseline: CentralizedSolve edge encoding caps n at 2^24")
	}

	// Count edges globally (each edge counted at its smaller endpoint).
	local := 0
	for _, v := range g.Neighbors(me) {
		if int(v) > me {
			local++
		}
	}
	mU, _ := s.SumCount(uint64(local), true)
	m := int(mU)

	// Gather at node 0 over a randomized window, like the MST baseline: the
	// window length keeps the expected per-round offered load at node 0
	// under half its receive capacity.
	window := 2*(m+capacity-1)/capacity + 4
	type job struct {
		at   int
		u, v int32
	}
	var jobs []job
	b := graph.NewBuilder(n)
	if me != 0 {
		for _, v32 := range g.Neighbors(me) {
			v := int(v32)
			if v > me {
				jobs = append(jobs, job{at: ctx.Rand().IntN(window), u: int32(me), v: int32(v)})
			}
		}
	} else {
		for _, v32 := range g.Neighbors(0) {
			b.AddEdge(0, int(v32))
		}
	}
	for t := 0; t < window; t++ {
		for _, j := range jobs {
			if j.at == t {
				ctx.SendWord(0, ncc.Word(dtagPlainEdge<<56|uint64(uint32(j.u)&0xFFFFFF)<<24|uint64(uint32(j.v)&0xFFFFFF)))
			}
		}
		s.Advance()
		s.DrainDirect(func(from ncc.NodeID, ws []uint64) {
			if me == 0 && ws[0]>>56 == dtagPlainEdge {
				b.AddEdge(int(ws[0]>>24&0xFFFFFF), int(ws[0]&0xFFFFFF))
			}
		})
	}

	// Solve locally at node 0, then broadcast the n-word answer vector.
	var words []uint64
	if me == 0 {
		words = solve(b.Build())
		if len(words) != n {
			panic("baseline: CentralizedSolve solver must return one word per node")
		}
	}
	answers := s.BroadcastWords(0, words, n)
	return answers[me]
}
