// Package baseline implements the naive Node-Capacitated Clique algorithms
// the paper's primitives are measured against: direct-neighbor flooding
// (whose cost degenerates to Theta(Delta/log n) per phase on high-degree
// graphs), direct broadcast and rotation gossip (exhibiting the Theta(n/log n)
// bound of Section 1), orientation-free multicast-tree setup (the star-graph
// worst case of Section 5), and a gather-everything-and-solve-centrally MST.
package baseline

import (
	"ncc/internal/comm"
	"ncc/internal/graph"
	"ncc/internal/ncc"
)

// DirectBroadcast delivers one word from src to every node by direct sends,
// cap nodes per round: Theta(n / log n) rounds — the naive alternative to the
// butterfly broadcast's O(log n).
func DirectBroadcast(ctx *ncc.Context, src ncc.NodeID, val uint64) uint64 {
	n := ctx.N()
	capacity := ctx.MinCap()
	rounds := (n - 1 + capacity - 1) / capacity
	got := val
	next := 0
	for r := 0; r < rounds; r++ {
		if ctx.ID() == src {
			for k := 0; k < capacity && next < n; k++ {
				if next == src {
					next++
					k--
					continue
				}
				ctx.SendWord(next, ncc.Word(val))
				next++
			}
		}
		for _, rc := range ctx.EndRound() {
			if w, ok := rc.AsWord(); ok {
				got = uint64(w)
			}
		}
	}
	return got
}

// ButterflyBroadcast delivers one word from src to every node through the
// butterfly (O(log n) rounds), the primitive-based counterpart of
// DirectBroadcast for the capacity experiments.
func ButterflyBroadcast(s *comm.Session, src ncc.NodeID, val uint64) uint64 {
	var words []uint64
	if s.Ctx.ID() == src {
		words = []uint64{val}
	}
	out := s.BroadcastWords(src, words, 1)
	return out[0]
}

// Gossip delivers one token from every node to every other node by rotation:
// in chunk c, node i sends its token to nodes i+c*cap+1 .. i+(c+1)*cap (mod
// n), so each node sends and receives exactly cap messages per round.
// Theta(n / log n) rounds — matching the Omega(n/log n) lower bound of
// Section 1 up to constants. Returns the sum of all received tokens plus the
// node's own (a checksum the tests verify).
func Gossip(ctx *ncc.Context, token uint64) uint64 {
	n := ctx.N()
	capacity := ctx.MinCap()
	sum := token
	sent := 1 // offset 0 is self
	for sent < n {
		burst := min(capacity, n-sent)
		for k := 0; k < burst; k++ {
			ctx.SendWord((ctx.ID()+sent+k)%n, ncc.Word(token))
		}
		sent += burst
		for _, rc := range ctx.EndRound() {
			if w, ok := rc.AsWord(); ok {
				sum += uint64(w)
			}
		}
	}
	return sum
}

// dtagFlood tags the BFS id wave's direct messages (body = the sender's
// distance); tags live in the top byte comm reserves for algorithms.
const dtagFlood uint64 = comm.DirectTagMin + 0x10

// NaiveBFS floods the input graph directly: each phase, frontier nodes send
// their distance to every neighbor over ceil(Delta/cap) rounds. On bounded
// degree graphs this is fine; on a star it costs Theta(n / log n) rounds per
// phase, which is exactly the problem the paper's broadcast trees solve.
// Returns (dist, parent) like core.BFS (parent ties broken by minimum id).
func NaiveBFS(s *comm.Session, g *graph.Graph, src int) (int, int) {
	ctx := s.Ctx
	me := ctx.ID()
	capacity := ctx.MinCap()
	maxDegU, _ := s.MaxAll(uint64(g.Degree(me)), true)
	phaseLen := (int(maxDegU) + capacity - 1) / capacity

	dist, parent := -1, -1
	if me == src {
		dist = 0
	}
	frontier := me == src
	for {
		reached := false
		sent := 0
		nbrs := g.Neighbors(me)
		for r := 0; r < phaseLen; r++ {
			if frontier {
				for k := 0; k < capacity && sent < len(nbrs); k++ {
					ctx.SendWord(int(nbrs[sent]), ncc.Word(dtagFlood<<56|uint64(uint32(dist))))
					sent++
				}
			}
			s.Advance()
			s.DrainDirect(func(from ncc.NodeID, ws []uint64) {
				if ws[0]>>56 != dtagFlood {
					return
				}
				d := int(int32(uint32(ws[0])))
				if dist == -1 {
					dist = d + 1
					parent = from
					reached = true
				} else if dist == d+1 && reached && from < parent {
					parent = from
				}
			})
		}
		frontier = reached
		if !s.AnyTrue(reached) {
			return dist, parent
		}
	}
}

// NaiveTreeSetup builds the Section 5 broadcast trees without the
// orientation: every node joins the group of every neighbor directly, so a
// node of degree Delta injects Delta packets and setup costs
// O(m/n + Delta/log n + log n) rounds — the star-graph ablation against
// core.BroadcastTrees.
func NaiveTreeSetup(s *comm.Session, g *graph.Graph) *comm.Trees {
	me := s.Ctx.ID()
	nbrs := g.Neighbors(me)
	items := make([]comm.TreeItem, 0, len(nbrs))
	for _, v := range nbrs {
		items = append(items, comm.TreeItem{Group: uint64(v), Origin: me})
	}
	return s.SetupTrees(items)
}
